//! A hand-rolled JSON value type and emitter.
//!
//! The workspace builds offline with no external crates, so the
//! machine-readable metrics files (see `EXPERIMENTS.md`, "Observability &
//! replay") are emitted through this minimal module instead of serde.
//! Emission only — the repository writes metrics, it does not parse
//! them (replay bundles use a simpler line format for the parts that are
//! read back).
//!
//! Objects preserve insertion order, which keeps emitted schemas stable
//! and diffable across runs.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (covers u64 counters below 2^63, which every
    /// counter in this repository is in practice).
    Int(i64),
    /// A float; non-finite values emit as `null` per RFC 8259.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// An empty array.
    pub fn arr() -> Json {
        Json::Arr(Vec::new())
    }

    /// Inserts `key: value` (objects only) and returns `self` for
    /// chaining. An existing key is replaced in place, keeping its
    /// position — which is what lets tests normalize wall-clock fields
    /// of a rendered report without disturbing the key order.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(entries) => match entries.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value.into(),
                None => entries.push((key.to_string(), value.into())),
            },
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Appends `value` (arrays only) and returns `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an array.
    pub fn push(mut self, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Arr(items) => items.push(value.into()),
            other => panic!("Json::push on non-array {other:?}"),
        }
        self
    }

    /// Looks up a key (objects only; `None` otherwise or if absent).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Pretty rendering with two-space indentation and a trailing
    /// newline — the format of every file under `experiment-results/`.
    pub fn render_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // Guarantee a float-shaped token (serde_json does the
                    // same) so consumers keep a stable type per field.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = fmt::Write::write_fmt(out, format_args!("{x:.1}"));
                    } else {
                        let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (k, v) = &entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1)
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::Int(u as i64)
    }
}
impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::Int(u as i64)
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::Int(u as i64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let j = Json::obj()
            .set("a", 1u64)
            .set("b", vec![1i64, 2, 3])
            .set("c", Json::Null)
            .set("d", true)
            .set("e", "hi");
        assert_eq!(
            j.render(),
            r#"{"a":1,"b":[1,2,3],"c":null,"d":true,"e":"hi"}"#
        );
    }

    #[test]
    fn string_escaping() {
        let j = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn floats_stay_float_shaped_and_nonfinite_is_null() {
        assert_eq!(Json::Float(2.0).render(), "2.0");
        assert_eq!(Json::Float(2.5).render(), "2.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn pretty_rendering_indents_and_ends_with_newline() {
        let j = Json::obj().set("x", Json::arr().push(1u64).push(2u64));
        assert_eq!(j.render_pretty(), "{\n  \"x\": [\n    1,\n    2\n  ]\n}\n");
        assert_eq!(Json::obj().render_pretty(), "{}\n");
    }

    #[test]
    fn object_order_is_insertion_order_and_get_works() {
        let j = Json::obj().set("z", 1u64).set("a", 2u64);
        assert!(j.render().starts_with(r#"{"z":1"#));
        assert_eq!(j.get("a"), Some(&Json::Int(2)));
        assert_eq!(j.get("missing"), None);
    }
}
