//! Access and fence modes of the ORC11 fragment.

use std::fmt;

/// Memory access modes.
///
/// ORC11 (the RC11 variant the paper targets) has non-atomic, relaxed,
/// release, and acquire accesses, plus fences. `AcqRel` is the combined
/// mode for read-modify-writes. SC accesses are not part of the fragment
/// and are not modelled.
///
/// Not every mode is legal for every operation; e.g. a plain read cannot be
/// `Release`. The memory validates modes dynamically ([C-VALIDATE]) and
/// panics on misuse, since mode misuse is a bug in the *simulated* program.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Mode {
    /// Non-atomic access. Racy non-atomics abort the execution.
    NonAtomic,
    /// Relaxed atomic access: no synchronization by itself, but feeds
    /// release/acquire *fences* and release sequences.
    Relaxed,
    /// Release write (or the write half of an RMW).
    Release,
    /// Acquire read (or the read half of an RMW).
    Acquire,
    /// Acquire-release, for read-modify-writes.
    AcqRel,
}

impl Mode {
    /// Whether the mode is atomic (everything except [`Mode::NonAtomic`]).
    pub fn is_atomic(self) -> bool {
        !matches!(self, Mode::NonAtomic)
    }

    /// Whether a read at this mode acquires the message frontier into `cur`.
    pub fn acquires(self) -> bool {
        matches!(self, Mode::Acquire | Mode::AcqRel)
    }

    /// Whether a write at this mode releases the thread's `cur` frontier.
    pub fn releases(self) -> bool {
        matches!(self, Mode::Release | Mode::AcqRel)
    }

    /// Validates this mode for use by a plain read.
    ///
    /// # Panics
    ///
    /// Panics for `Release` (reads cannot release).
    pub fn check_read(self) {
        assert!(
            !matches!(self, Mode::Release),
            "a read cannot use Release mode"
        );
    }

    /// Validates this mode for use by a plain write.
    ///
    /// # Panics
    ///
    /// Panics for `Acquire` (writes cannot acquire).
    pub fn check_write(self) {
        assert!(
            !matches!(self, Mode::Acquire),
            "a write cannot use Acquire mode"
        );
    }

    /// Validates this mode for use by an RMW.
    ///
    /// # Panics
    ///
    /// Panics for `NonAtomic` (RMWs are atomic by definition).
    pub fn check_rmw(self) {
        assert!(self.is_atomic(), "an RMW cannot be non-atomic");
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mode::NonAtomic => "na",
            Mode::Relaxed => "rlx",
            Mode::Release => "rel",
            Mode::Acquire => "acq",
            Mode::AcqRel => "acq-rel",
        };
        f.write_str(s)
    }
}

/// Fence modes.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum FenceMode {
    /// Acquire fence: promotes the `acq` frontier (pending relaxed reads)
    /// into `cur`.
    Acquire,
    /// Release fence: snapshots `cur` into `rel`, to be published by later
    /// relaxed writes.
    Release,
    /// Combined acquire + release fence.
    AcqRel,
    /// Sequentially consistent fence: an acquire-release fence that
    /// additionally joins with a single global "SC frontier" and publishes
    /// into it, totally ordering all SC fences (the store-load ordering
    /// release/acquire cannot provide). Needed e.g. by the Chase-Lev
    /// deque.
    SeqCst,
}

impl fmt::Display for FenceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FenceMode::Acquire => "fence(acq)",
            FenceMode::Release => "fence(rel)",
            FenceMode::AcqRel => "fence(acq-rel)",
            FenceMode::SeqCst => "fence(sc)",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomicity_classification() {
        assert!(!Mode::NonAtomic.is_atomic());
        for m in [Mode::Relaxed, Mode::Release, Mode::Acquire, Mode::AcqRel] {
            assert!(m.is_atomic());
        }
    }

    #[test]
    fn acquire_release_classification() {
        assert!(Mode::Acquire.acquires() && Mode::AcqRel.acquires());
        assert!(!Mode::Relaxed.acquires() && !Mode::Release.acquires());
        assert!(Mode::Release.releases() && Mode::AcqRel.releases());
        assert!(!Mode::Relaxed.releases() && !Mode::Acquire.releases());
    }

    #[test]
    #[should_panic(expected = "read cannot use Release")]
    fn release_read_rejected() {
        Mode::Release.check_read();
    }

    #[test]
    #[should_panic(expected = "write cannot use Acquire")]
    fn acquire_write_rejected() {
        Mode::Acquire.check_write();
    }

    #[test]
    #[should_panic(expected = "RMW cannot be non-atomic")]
    fn non_atomic_rmw_rejected() {
        Mode::NonAtomic.check_rmw();
    }

    #[test]
    fn display() {
        assert_eq!(Mode::Relaxed.to_string(), "rlx");
        assert_eq!(FenceMode::AcqRel.to_string(), "fence(acq-rel)");
    }
}
