//! Write messages: the elements of per-location histories.

use crate::frontier::Frontier;
use crate::val::{ThreadId, Val};

/// A write message in a location's history (§2.3: the atomic points-to
/// assertion `ℓ ↦ h` maps timestamps to `(value, view)` pairs — here the
/// view is generalized to a full [`Frontier`]).
#[derive(Clone, Debug)]
pub struct Msg {
    /// The written value.
    pub val: Val,
    /// The frontier released by this write: joined by acquire readers.
    pub frontier: Frontier,
    /// The writing thread.
    pub writer: ThreadId,
    /// Whether the write was atomic.
    pub atomic: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_construction() {
        let m = Msg {
            val: Val::Int(1),
            frontier: Frontier::new(),
            writer: 0,
            atomic: true,
        };
        assert_eq!(m.val, Val::Int(1));
        assert!(m.atomic);
    }
}
