//! A small, dependency-free, deterministic PRNG.
//!
//! The exploration strategies only need a fast, seedable, reproducible
//! source of uniform choices — not cryptographic quality. This is
//! `splitmix64` (Steele et al., *Fast Splittable Pseudorandom Number
//! Generators*, OOPSLA 2014) feeding a `xoshiro256**` core, the same
//! construction `rand`'s `SmallRng` family uses. Streams are a pure
//! function of the seed, which is what makes seeds citable in experiment
//! tables and replayable in violation bundles.

/// A seedable deterministic PRNG (xoshiro256** seeded via splitmix64).
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[lo, hi)` via Lemire's multiply-shift rejection
    /// method (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let span = hi - lo;
        if span == 0 {
            // hi - lo wrapped: the full 2^64 range.
            return self.next_u64();
        }
        // Lemire rejection: unbiased uniform in [0, span).
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= threshold {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// A uniform `usize` index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range(0, n as u64) as usize
    }

    /// A uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "gen_i64: empty range {lo}..{hi}");
        lo.wrapping_add(self.gen_range(0, (hi - lo) as u64) as i64)
    }

    /// A uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn ranges_are_respected_and_hit_everything() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = r.gen_range(10, 15);
            assert!((10..15).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all range values reachable");
    }

    #[test]
    fn index_and_i64_helpers() {
        let mut r = SmallRng::seed_from_u64(3);
        for n in 1..10usize {
            assert!(r.gen_index(n) < n);
        }
        for _ in 0..100 {
            let v = r.gen_i64(-5, 5);
            assert!((-5..5).contains(&v));
        }
        let mut heads = 0;
        for _ in 0..200 {
            if r.gen_bool() {
                heads += 1;
            }
        }
        assert!((40..160).contains(&heads), "coin is roughly fair");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(0).gen_range(3, 3);
    }
}
