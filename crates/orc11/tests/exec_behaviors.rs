//! Integration tests for executor behaviours: phase structure, ghost
//! plumbing, trace replay across strategies, and op accounting.

use orc11::{
    pct_strategy, random_strategy, replay_strategy, run_model, BodyFn, Config, Loc, Mode, Strategy,
    Val,
};

/// A 3-thread program with enough nondeterminism to make traces
/// interesting: outcome is (t2's read, t3's read).
fn racy_program(strategy: Box<dyn Strategy>) -> orc11::RunOutcome<(i64, i64)> {
    run_model(
        &Config::default(),
        strategy,
        |ctx| ctx.alloc("x", Val::Int(0)),
        vec![
            Box::new(|ctx: &mut orc11::ThreadCtx, &x: &Loc| {
                ctx.write(x, Val::Int(1), Mode::Relaxed);
                ctx.write(x, Val::Int(2), Mode::Relaxed);
                0i64
            }) as BodyFn<'_, _, i64>,
            Box::new(|ctx: &mut orc11::ThreadCtx, &x: &Loc| {
                ctx.read(x, Mode::Relaxed).expect_int()
            }),
            Box::new(|ctx: &mut orc11::ThreadCtx, &x: &Loc| {
                ctx.read(x, Mode::Relaxed).expect_int()
            }),
        ],
        |_, _, outs| (outs[1], outs[2]),
    )
}

#[test]
fn pct_traces_replay_exactly() {
    // Every PCT execution's trace, replayed, reproduces the same outcome
    // and the same trace — strategies differ, determinism does not.
    for seed in 0..40 {
        let original = racy_program(pct_strategy(seed, 3, 32));
        let replayed = racy_program(replay_strategy(&original.trace));
        assert_eq!(
            original.result.as_ref().unwrap(),
            replayed.result.as_ref().unwrap(),
            "seed {seed}"
        );
        assert_eq!(original.trace, replayed.trace, "seed {seed}");
        assert_eq!(original.steps, replayed.steps, "seed {seed}");
    }
}

#[test]
fn random_and_pct_cover_same_outcome_space() {
    use std::collections::BTreeSet;
    let mut random_outcomes = BTreeSet::new();
    let mut pct_outcomes = BTreeSet::new();
    for seed in 0..400 {
        random_outcomes.insert(racy_program(random_strategy(seed)).result.unwrap());
        pct_outcomes.insert(racy_program(pct_strategy(seed, 3, 32)).result.unwrap());
    }
    // Both should see a healthy variety (the full space is {0,1,2}²).
    assert!(random_outcomes.len() >= 5, "{random_outcomes:?}");
    assert!(pct_outcomes.len() >= 4, "{pct_outcomes:?}");
}

#[test]
fn setup_and_finish_run_solo_with_inherited_views() {
    // Setup's writes are visible to every body without synchronization
    // (spawn edges), and finish sees every body's writes (join edges) —
    // non-atomically, i.e. race-free.
    let out = run_model(
        &Config::default(),
        random_strategy(0),
        |ctx| {
            let a = ctx.alloc("a", Val::Int(0));
            ctx.write(a, Val::Int(10), Mode::NonAtomic);
            let slots = ctx.alloc_block("slots", &[Val::Int(0), Val::Int(0)]);
            (a, slots)
        },
        vec![
            Box::new(|ctx: &mut orc11::ThreadCtx, &(a, slots): &(Loc, Loc)| {
                // Spawn edge: non-atomic read of setup's write is safe.
                let v = ctx.read(a, Mode::NonAtomic).expect_int();
                ctx.write(slots.field(0), Val::Int(v + 1), Mode::NonAtomic);
            }) as BodyFn<'_, _, ()>,
            Box::new(|ctx: &mut orc11::ThreadCtx, &(a, slots): &(Loc, Loc)| {
                let v = ctx.read(a, Mode::NonAtomic).expect_int();
                ctx.write(slots.field(1), Val::Int(v + 2), Mode::NonAtomic);
            }),
        ],
        |ctx, &(_, slots), _| {
            // Join edges: finish reads both bodies' non-atomic writes.
            (
                ctx.read(slots.field(0), Mode::NonAtomic).expect_int(),
                ctx.read(slots.field(1), Mode::NonAtomic).expect_int(),
            )
        },
    );
    assert_eq!(out.result.unwrap(), (11, 12));
}

#[test]
fn ghost_api_roundtrip() {
    let out = run_model(
        &Config::default(),
        random_strategy(0),
        |ctx| {
            // Manual ghost joins work outside commit windows too.
            ctx.ghost_add(42, 7);
            assert!(ctx.ghost(42).contains(&7));
            ctx.alloc("flag", Val::Int(0))
        },
        vec![Box::new(|ctx: &mut orc11::ThreadCtx, &flag: &Loc| {
            // Bodies inherit the setup thread's ghost (spawn edge).
            assert!(ctx.ghost(42).contains(&7));
            ctx.write_with(flag, Val::Int(1), Mode::Release, |gh| {
                assert!(gh.ghost(42).contains(&7));
                gh.ghost_add(42, 8);
            });
            ctx.ghost(42).len()
        }) as BodyFn<'_, _, usize>],
        |ctx, _, outs| {
            assert_eq!(outs[0], 2);
            // Finish joins the body's ghost.
            ctx.ghost(42).len()
        },
    );
    assert_eq!(out.result.unwrap(), 2);
}

#[test]
fn step_count_and_peek_are_consistent() {
    let out = run_model(
        &Config::default(),
        random_strategy(1),
        |ctx| {
            let before = ctx.step_count();
            let l = ctx.alloc("x", Val::Int(3));
            assert_eq!(ctx.step_count(), before + 1);
            assert_eq!(ctx.peek(l), Val::Int(3));
            l
        },
        Vec::<BodyFn<'_, _, ()>>::new(),
        |ctx, &l, _| {
            ctx.write(l, Val::Int(4), Mode::Relaxed);
            ctx.peek(l)
        },
    );
    let steps_reported = out.steps;
    assert_eq!(out.result.unwrap(), Val::Int(4));
    assert!(steps_reported >= 2);
}

#[test]
fn zero_body_programs_work() {
    let out = run_model(
        &Config::default(),
        random_strategy(0),
        |_ctx| 5i32,
        Vec::<BodyFn<'_, _, ()>>::new(),
        |_, &s, outs| {
            assert!(outs.is_empty());
            s * 2
        },
    );
    assert_eq!(out.result.unwrap(), 10);
}
