//! Property-based tests for the substrate's algebraic structures and
//! strategies.
//!
//! Exercised over deterministic seeded random inputs (no external
//! property-testing dependency); generators are pure functions of the
//! seed, which every assertion message carries.

use orc11::rng::SmallRng;
use orc11::{pct_strategy, random_strategy, GhostView, Loc, VecClock, View};

/// Seeds per property.
const CASES: u64 = 300;

fn gen_view(rng: &mut SmallRng) -> View {
    let mut v = View::new();
    for _ in 0..rng.gen_index(10) {
        v.bump(
            Loc::from_raw(rng.gen_range(0, 8) as u32),
            rng.gen_range(0, 20),
        );
    }
    v
}

fn gen_vc(rng: &mut SmallRng) -> VecClock {
    let mut vc = VecClock::new();
    for t in 0..rng.gen_index(6) {
        vc.bump(t, rng.gen_range(0, 20));
    }
    vc
}

fn gen_ghost(rng: &mut SmallRng) -> GhostView {
    let mut g = GhostView::new();
    for _ in 0..rng.gen_index(12) {
        g.insert(rng.gen_range(0, 4), rng.gen_range(0, 30));
    }
    g
}

#[test]
fn view_join_is_commutative() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (a, b) = (gen_view(&mut rng), gen_view(&mut rng));
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        assert_eq!(ab, ba, "seed {seed}");
    }
}

#[test]
fn view_join_is_associative() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (a, b, c) = (gen_view(&mut rng), gen_view(&mut rng), gen_view(&mut rng));
        let mut left = a.clone();
        left.join(&b);
        left.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut right = a.clone();
        right.join(&bc);
        assert_eq!(left, right, "seed {seed}");
    }
}

#[test]
fn view_join_is_idempotent_and_upper_bound() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (a, b) = (gen_view(&mut rng), gen_view(&mut rng));
        let mut aa = a.clone();
        aa.join(&a);
        assert_eq!(&aa, &a, "seed {seed}");
        let mut j = a.clone();
        j.join(&b);
        assert!(a.leq(&j), "seed {seed}");
        assert!(b.leq(&j), "seed {seed}");
    }
}

#[test]
fn view_leq_is_antisymmetric() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (a, b) = (gen_view(&mut rng), gen_view(&mut rng));
        if a.leq(&b) && b.leq(&a) {
            assert_eq!(a, b, "seed {seed}");
        }
    }
}

#[test]
fn vc_lattice_laws() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (a, b, c) = (gen_vc(&mut rng), gen_vc(&mut rng), gen_vc(&mut rng));
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        assert_eq!(&ab, &ba, "seed {seed}");
        assert!(a.leq(&ab) && b.leq(&ab), "seed {seed}");
        let mut abc1 = ab.clone();
        abc1.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut abc2 = a.clone();
        abc2.join(&bc);
        assert_eq!(abc1, abc2, "seed {seed}");
    }
}

#[test]
fn ghost_lattice_laws() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (a, b) = (gen_ghost(&mut rng), gen_ghost(&mut rng));
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        assert_eq!(&ab, &ba, "seed {seed}");
        assert!(a.leq(&ab), "seed {seed}");
        assert!(b.leq(&ab), "seed {seed}");
        let mut aa = a.clone();
        aa.join(&a);
        assert_eq!(aa, a, "seed {seed}");
    }
}

#[test]
fn strategies_stay_in_range() {
    use orc11::ChoiceKind;
    for seed in 0..200 {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xa11ce);
        let arity = 2 + rng.gen_index(6);
        let mut r = random_strategy(seed);
        let mut p = pct_strategy(seed, 3, 100);
        for _ in 0..50 {
            assert!(r.choose(ChoiceKind::Read, arity) < arity, "seed {seed}");
            assert!(p.choose(ChoiceKind::Read, arity) < arity, "seed {seed}");
        }
        let candidates: Vec<usize> = (1..=arity).collect();
        for _ in 0..50 {
            assert!(p.choose_thread(&candidates) < arity, "seed {seed}");
        }
    }
}

/// PCT must be deterministic per seed (replayable exploration).
#[test]
fn pct_is_deterministic_per_seed() {
    let candidates: Vec<usize> = vec![1, 2, 3];
    let run = |seed: u64| -> Vec<usize> {
        let mut s = pct_strategy(seed, 2, 50);
        (0..100).map(|_| s.choose_thread(&candidates)).collect()
    };
    assert_eq!(run(7), run(7));
    // And different seeds should (almost surely) differ somewhere.
    assert_ne!(run(7), run(8));
}

/// PCT prefers the highest-priority thread consistently between change
/// points (it is not uniform).
#[test]
fn pct_is_priority_stable() {
    let mut s = orc11::PctStrategy::new(42, 0, 100);
    use orc11::Strategy;
    let candidates: Vec<usize> = vec![1, 2, 3, 4];
    let first = s.choose_thread(&candidates);
    for _ in 0..50 {
        assert_eq!(s.choose_thread(&candidates), first);
    }
}
