//! Property-based tests for the substrate's algebraic structures and
//! strategies.

use proptest::prelude::*;

use orc11::{pct_strategy, random_strategy, GhostView, Loc, VecClock, View};

fn view_strategy() -> impl Strategy<Value = View> {
    prop::collection::vec((0u32..8, 0u64..20), 0..10).prop_map(|entries| {
        let mut v = View::new();
        for (l, t) in entries {
            v.bump(Loc::from_raw(l), t);
        }
        v
    })
}

fn vc_strategy() -> impl Strategy<Value = VecClock> {
    prop::collection::vec(0u64..20, 0..6).prop_map(|cs| {
        let mut vc = VecClock::new();
        for (t, c) in cs.into_iter().enumerate() {
            vc.bump(t, c);
        }
        vc
    })
}

fn ghost_strategy() -> impl Strategy<Value = GhostView> {
    prop::collection::vec((0u64..4, 0u64..30), 0..12).prop_map(|entries| {
        let mut g = GhostView::new();
        for (k, id) in entries {
            g.insert(k, id);
        }
        g
    })
}

proptest! {
    #[test]
    fn view_join_is_commutative(a in view_strategy(), b in view_strategy()) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn view_join_is_associative(
        a in view_strategy(), b in view_strategy(), c in view_strategy()
    ) {
        let mut left = a.clone();
        left.join(&b);
        left.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut right = a.clone();
        right.join(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn view_join_is_idempotent_and_upper_bound(a in view_strategy(), b in view_strategy()) {
        let mut aa = a.clone();
        aa.join(&a);
        prop_assert_eq!(&aa, &a);
        let mut j = a.clone();
        j.join(&b);
        prop_assert!(a.leq(&j));
        prop_assert!(b.leq(&j));
    }

    #[test]
    fn view_leq_is_antisymmetric(a in view_strategy(), b in view_strategy()) {
        if a.leq(&b) && b.leq(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn vc_lattice_laws(a in vc_strategy(), b in vc_strategy(), c in vc_strategy()) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert!(a.leq(&ab) && b.leq(&ab));
        let mut abc1 = ab.clone();
        abc1.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut abc2 = a.clone();
        abc2.join(&bc);
        prop_assert_eq!(abc1, abc2);
    }

    #[test]
    fn ghost_lattice_laws(a in ghost_strategy(), b in ghost_strategy()) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert!(a.leq(&ab));
        prop_assert!(b.leq(&ab));
        let mut aa = a.clone();
        aa.join(&a);
        prop_assert_eq!(aa, a);
    }

    #[test]
    fn strategies_stay_in_range(seed in 0u64..1000, arity in 2usize..8) {
        use orc11::ChoiceKind;
        let mut r = random_strategy(seed);
        let mut p = pct_strategy(seed, 3, 100);
        for _ in 0..50 {
            prop_assert!(r.choose(ChoiceKind::Read, arity) < arity);
            prop_assert!(p.choose(ChoiceKind::Read, arity) < arity);
        }
        let candidates: Vec<usize> = (1..=arity).collect();
        for _ in 0..50 {
            prop_assert!(p.choose_thread(&candidates) < arity);
        }
    }
}

/// PCT must be deterministic per seed (replayable exploration).
#[test]
fn pct_is_deterministic_per_seed() {
    let candidates: Vec<usize> = vec![1, 2, 3];
    let run = |seed: u64| -> Vec<usize> {
        let mut s = pct_strategy(seed, 2, 50);
        (0..100).map(|_| s.choose_thread(&candidates)).collect()
    };
    assert_eq!(run(7), run(7));
    // And different seeds should (almost surely) differ somewhere.
    assert_ne!(run(7), run(8));
}

/// PCT prefers the highest-priority thread consistently between change
/// points (it is not uniform).
#[test]
fn pct_is_priority_stable() {
    let mut s = orc11::PctStrategy::new(42, 0, 100);
    use orc11::Strategy;
    let candidates: Vec<usize> = vec![1, 2, 3, 4];
    let first = s.choose_thread(&candidates);
    for _ in 0..50 {
        assert_eq!(s.choose_thread(&candidates), first);
    }
}
