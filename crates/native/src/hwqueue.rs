//! The bounded Herlihy-Wing queue on real atomics (§3.1–3.2): an
//! acquire-release fetch-and-add reserves a slot, a release store fills
//! it, and dequeuers scan with acquire loads and take elements with
//! acquire CASes.

use std::fmt;
use std::ptr;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};
use std::sync::atomic::{AtomicPtr, AtomicUsize};

use crate::ConcurrentQueue;

/// Sentinel pointer marking a slot whose element has been taken.
fn taken<T>() -> *mut T {
    1usize as *mut T
}

/// A bounded Herlihy-Wing queue (see module docs).
///
/// As in the original algorithm, the slot array is not recycled: a queue
/// of capacity `n` accepts `n` enqueues in total.
pub struct HwQueue<T> {
    tail: AtomicUsize,
    slots: Box<[AtomicPtr<T>]>,
}

impl<T> fmt::Debug for HwQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HwQueue")
            .field("capacity", &self.slots.len())
            .finish()
    }
}

impl<T> HwQueue<T> {
    /// Creates a queue accepting up to `capacity` enqueues in total.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let slots: Vec<AtomicPtr<T>> = (0..capacity)
            .map(|_| AtomicPtr::new(ptr::null_mut()))
            .collect();
        HwQueue {
            tail: AtomicUsize::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// The total enqueue capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Enqueues `v`.
    ///
    /// # Errors
    ///
    /// Returns `Err(v)` if the queue's total capacity is exhausted.
    pub fn try_push(&self, v: T) -> Result<(), T> {
        // AcqRel FAA: the release half (with RMW release sequences) lets a
        // dequeuer that acquire-reads the tail see every slot filled by
        // enqueues that happen-before it — what FIFO needs (§3.1).
        let t = self.tail.fetch_add(1, AcqRel);
        if t >= self.slots.len() {
            return Err(v);
        }
        let p = Box::into_raw(Box::new(v));
        // Commit point: the release store of the element.
        self.slots[t].store(p, Release);
        Ok(())
    }

    /// Attempts one dequeue scan; `None` means the scan observed the queue
    /// as empty.
    pub fn try_pop(&self) -> Option<T> {
        let n = self.tail.load(Acquire).min(self.slots.len());
        for slot in &self.slots[..n] {
            let p = slot.load(Acquire);
            if p.is_null() || p == taken() {
                continue;
            }
            // Acquire CAS, relaxed store half ("dequeues use acquire
            // ones") — see the model twin for why a releasing TAKEN write
            // would be wrong.
            if slot.compare_exchange(p, taken(), Acquire, Relaxed).is_ok() {
                return Some(unsafe { *Box::from_raw(p) });
            }
        }
        None
    }
}

impl<T> Drop for HwQueue<T> {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            let p = slot.load(Relaxed);
            if !p.is_null() && p != taken() {
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

impl<T: Send> ConcurrentQueue<T> for HwQueue<T> {
    fn enqueue(&self, v: T) {
        crate::perf::op(crate::perf::OpKind::QueueEnq, || {
            self.try_push(v)
                .unwrap_or_else(|_| panic!("HwQueue capacity {} exhausted", self.slots.len()))
        });
    }

    fn dequeue(&self) -> Option<T> {
        crate::perf::op(crate::perf::OpKind::QueueDeq, || self.try_pop())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::queue_stress;

    #[test]
    fn fifo_order() {
        let q = HwQueue::new(8);
        assert_eq!(q.try_pop(), None);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn capacity_is_enforced() {
        let q = HwQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn drop_releases_untaken_elements() {
        let q = HwQueue::new(16);
        for i in 0..10 {
            q.try_push(Box::new(i)).unwrap();
        }
        q.try_pop().unwrap();
        drop(q);
    }

    #[test]
    fn concurrent_stress() {
        let producers = 4u64;
        let per_thread = 2000u64;
        let q = HwQueue::new((producers * per_thread) as usize);
        queue_stress(&q, producers, 2, per_thread);
    }
}
