//! The Chase-Lev work-stealing deque on real atomics (the paper's §6
//! future work), after Lê, Pop, Cohen & Zappa Nardelli (PPoPP 2013).
//!
//! Single owner pushes/pops at the bottom, thieves steal from the top;
//! `top` is advanced by CAS only; **SC fences** provide the store-load
//! orderings the algorithm is famously incorrect without. The buffer is
//! bounded and not recycled (a deque of capacity `n` accepts `n` pushes
//! in total), matching the model twin.

use std::fmt;
use std::ptr;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release, SeqCst};
use std::sync::atomic::{fence, AtomicI64, AtomicPtr};

/// Handle for the single owner thread (not `Sync`: one owner).
pub struct Worker<T> {
    inner: std::sync::Arc<Inner<T>>,
}

/// Cloneable handle for thief threads.
pub struct Stealer<T> {
    inner: std::sync::Arc<Inner<T>>,
}

struct Inner<T> {
    top: AtomicI64,
    bottom: AtomicI64,
    buf: Box<[AtomicPtr<T>]>,
}

impl<T> fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("chase_lev::Worker")
            .field("capacity", &self.inner.buf.len())
            .finish()
    }
}

impl<T> fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("chase_lev::Stealer")
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: self.inner.clone(),
        }
    }
}

/// Outcome of a steal attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// Stole a value.
    Stolen(T),
    /// The deque appeared empty.
    Empty,
    /// Lost a race; retry if desired.
    Retry,
}

/// Creates a bounded work-stealing deque accepting up to `capacity`
/// pushes in total.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn chase_lev<T: Send>(capacity: usize) -> (Worker<T>, Stealer<T>) {
    assert!(capacity > 0, "capacity must be positive");
    let inner = std::sync::Arc::new(Inner {
        top: AtomicI64::new(0),
        bottom: AtomicI64::new(0),
        buf: (0..capacity)
            .map(|_| AtomicPtr::new(ptr::null_mut()))
            .collect(),
    });
    (
        Worker {
            inner: inner.clone(),
        },
        Stealer { inner },
    )
}

unsafe impl<T: Send> Send for Worker<T> {}
unsafe impl<T: Send> Send for Stealer<T> {}
unsafe impl<T: Send> Sync for Stealer<T> {}

impl<T: Send> Worker<T> {
    /// Pushes `v` at the bottom.
    ///
    /// # Panics
    ///
    /// Panics if the total push capacity is exhausted.
    pub fn push(&self, v: T) {
        crate::perf::op(crate::perf::OpKind::DequePush, || {
            let q = &*self.inner;
            let b = q.bottom.load(Relaxed);
            assert!(
                (b as usize) < q.buf.len(),
                "chase-lev capacity {} exhausted",
                q.buf.len()
            );
            let p = Box::into_raw(Box::new(v));
            q.buf[b as usize].store(p, Relaxed);
            // Publication: release so any acquire-read of bottom sees the
            // element.
            q.bottom.store(b + 1, Release);
        })
    }

    /// Pops from the bottom, or `None` if the deque appears empty.
    pub fn pop(&self) -> Option<T> {
        crate::perf::op(crate::perf::OpKind::DequePop, || {
            let q = &*self.inner;
            let b = q.bottom.load(Relaxed) - 1;
            q.bottom.store(b, Release);
            fence(SeqCst);
            let t = q.top.load(Relaxed);
            if t > b {
                // Empty.
                q.bottom.store(b + 1, Release);
                return None;
            }
            let p = q.buf[b as usize].load(Relaxed);
            if t < b {
                // Plenty: safely ours.
                return Some(unsafe { *Box::from_raw(p) });
            }
            // Last element: race thieves on top.
            let won = q.top.compare_exchange(t, t + 1, AcqRel, Acquire).is_ok();
            q.bottom.store(b + 1, Release);
            won.then(|| unsafe { *Box::from_raw(p) })
        })
    }
}

impl<T: Send> Stealer<T> {
    /// Attempts one steal from the top.
    pub fn steal(&self) -> Steal<T> {
        crate::perf::op(crate::perf::OpKind::DequeSteal, || {
            let q = &*self.inner;
            let t = q.top.load(Acquire);
            fence(SeqCst);
            let b = q.bottom.load(Acquire);
            if t >= b {
                return Steal::Empty;
            }
            let p = q.buf[t as usize].load(Relaxed);
            if q.top.compare_exchange(t, t + 1, AcqRel, Relaxed).is_ok() {
                Steal::Stolen(unsafe { *Box::from_raw(p) })
            } else {
                Steal::Retry
            }
        })
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Runs when the last handle (worker or stealer) is dropped, so no
        // concurrent access is possible; `top..bottom` are the live
        // indices.
        let t = *self.top.get_mut();
        let b = *self.bottom.get_mut();
        for i in t..b {
            let p = *self.buf[i as usize].get_mut();
            if !p.is_null() {
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn owner_lifo() {
        let (w, _s) = chase_lev::<i32>(8);
        assert_eq!(w.pop(), None);
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_fifo() {
        let (w, s) = chase_lev::<i32>(8);
        w.push(1);
        w.push(2);
        assert_eq!(s.steal(), Steal::Stolen(1));
        assert_eq!(s.steal(), Steal::Stolen(2));
        assert_eq!(s.steal(), Steal::Empty);
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn drop_releases_elements() {
        let (w, _s) = chase_lev(16);
        for i in 0..10 {
            w.push(Box::new(i));
        }
        w.pop().unwrap();
        drop(w);
    }

    #[test]
    fn concurrent_owner_thieves_no_loss_no_dup() {
        const N: u64 = 20_000;
        let (w, s) = chase_lev::<u64>(N as usize);
        let done = AtomicBool::new(false);
        let all: Vec<u64> = std::thread::scope(|scope| {
            let thieves: Vec<_> = (0..3)
                .map(|_| {
                    let s = s.clone();
                    let done = &done;
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            match s.steal() {
                                Steal::Stolen(v) => got.push(v),
                                Steal::Retry => std::hint::spin_loop(),
                                Steal::Empty => {
                                    if done.load(Ordering::Acquire) {
                                        if let Steal::Stolen(v) = s.steal() {
                                            got.push(v);
                                            continue;
                                        }
                                        break;
                                    }
                                    std::hint::spin_loop();
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            let mut owner_got = Vec::new();
            for i in 0..N {
                w.push(i);
                if i % 3 == 0 {
                    if let Some(v) = w.pop() {
                        owner_got.push(v);
                    }
                }
            }
            while let Some(v) = w.pop() {
                owner_got.push(v);
            }
            done.store(true, Ordering::Release);
            let mut all = owner_got;
            for t in thieves {
                all.extend(t.join().unwrap());
            }
            all
        });
        // Every pushed element is taken exactly once... except elements
        // still in flight when the owner stopped popping: drain check.
        let unique: BTreeSet<u64> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len(), "duplicated element");
        assert_eq!(all.len() as u64, N, "lost elements: {} of {N}", all.len());
    }

    #[test]
    fn stealers_see_fifo_order() {
        // One thief: its stolen sequence must be increasing (steals take
        // from the top in push order).
        const N: u64 = 10_000;
        let (w, s) = chase_lev::<u64>(N as usize);
        std::thread::scope(|scope| {
            let h = scope.spawn(move || {
                let mut got = Vec::new();
                while got.len() < (N / 2) as usize {
                    if let Steal::Stolen(v) = s.steal() {
                        got.push(v);
                    }
                }
                got
            });
            for i in 0..N {
                w.push(i);
            }
            let got = h.join().unwrap();
            assert!(got.windows(2).all(|p| p[0] < p[1]), "steals out of order");
        });
    }
}
