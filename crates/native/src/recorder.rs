//! Invocation/response recording for the runtime conformance harness
//! (`feature = "recorder"`).
//!
//! `compass::conform` checks the *native* structures in this crate
//! against the paper's consistency specifications by stress-running them
//! on real threads and reconstructing a Compass event graph from the
//! real-time order of the operations. This module provides the
//! instrumentation side of that pipeline, kept deliberately tiny and
//! dependency-free:
//!
//! * [`Clock`] — one shared monotonic clock (nanoseconds since the round
//!   epoch) so invocation/response timestamps from different threads are
//!   comparable;
//! * [`OpLog`] — a thread-*owned* append buffer of [`TimedOp`]s. Each
//!   thread writes only its own log and the logs are handed back when the
//!   round joins, so recording needs no synchronization at all (the
//!   "lock-free thread-local buffer" is just a `Vec` the thread owns);
//! * [`Jitter`] — a seeded splitmix64 RNG for reproducible randomized
//!   yields/delays that perturb the schedule between operations;
//! * [`run_round`] — a barrier-started round: `threads` worker threads
//!   all block on one barrier, then run the workload closure, then join.
//!
//! The op payload type `O` is chosen by the caller — the conformance
//! harness instantiates it with the event enums already defined in
//! `compass` (`QueueEvent`, `StackEvent`, …), so no operation vocabulary
//! is duplicated here.

use std::sync::Barrier;
use std::time::Instant;

/// A monotonic clock shared by every thread of a round.
///
/// Timestamps are nanoseconds since the clock's creation. `Instant` is
/// monotonic per the standard library's contract, and a single `Clock`
/// is shared by all threads, so timestamps are mutually comparable:
/// if `a.resp < b.inv` then operation `a` really did return before
/// operation `b` was invoked.
#[derive(Debug)]
pub struct Clock {
    epoch: Instant,
}

impl Clock {
    /// Starts a fresh clock; its epoch is "now".
    pub fn new() -> Self {
        Clock {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the epoch.
    pub fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new()
    }
}

/// One recorded operation: the op payload plus its invocation and
/// response timestamps (from the round's [`Clock`], `inv <= resp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOp<O> {
    /// What the operation was (and returned), in the caller's vocabulary.
    pub op: O,
    /// Timestamp taken immediately before the call.
    pub inv: u64,
    /// Timestamp taken immediately after the call returned.
    pub resp: u64,
}

/// A thread-owned invocation/response log.
///
/// Exactly one thread appends to a given `OpLog`; ownership moves back
/// to the coordinator when the round joins. No atomics, no locks — the
/// recording hot path is a timestamp read, the operation itself, a
/// second timestamp read, and a `Vec::push`.
#[derive(Debug)]
pub struct OpLog<O> {
    ops: Vec<TimedOp<O>>,
}

impl<O> OpLog<O> {
    /// An empty log with room for `cap` operations (so recording does
    /// not reallocate mid-round).
    pub fn with_capacity(cap: usize) -> Self {
        OpLog {
            ops: Vec::with_capacity(cap),
        }
    }

    /// Runs `action`, timestamping around it, and records the op that
    /// `op_of` derives from the result. Returning `None` records
    /// nothing — used for outcomes that are not events (e.g. a lost
    /// `Steal::Retry` race).
    pub fn record<R>(
        &mut self,
        clock: &Clock,
        action: impl FnOnce() -> R,
        op_of: impl FnOnce(&R) -> Option<O>,
    ) -> R {
        let inv = clock.now();
        let result = action();
        let resp = clock.now();
        if let Some(op) = op_of(&result) {
            self.ops.push(TimedOp {
                op,
                inv,
                resp: resp.max(inv),
            });
        }
        result
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Consumes the log into its operations, in recording order.
    pub fn into_ops(self) -> Vec<TimedOp<O>> {
        self.ops
    }
}

/// A seeded splitmix64 RNG driving reproducible schedule perturbation.
///
/// Deliberately independent of `orc11::SmallRng`: the recorder must not
/// depend on the model-checking substrate. splitmix64 is tiny, full
/// period, and plenty for choosing yields and op mixes.
#[derive(Debug, Clone)]
pub struct Jitter {
    state: u64,
}

impl Jitter {
    /// An RNG seeded with `seed` (same seed ⇒ same sequence).
    pub fn seed(seed: u64) -> Self {
        Jitter { state: seed }
    }

    /// A per-thread RNG derived from a round seed: distinct threads get
    /// decorrelated streams, deterministically.
    pub fn for_thread(round_seed: u64, thread_index: usize) -> Self {
        let mut j =
            Jitter::seed(round_seed ^ (thread_index as u64).wrapping_mul(0x9e3779b97f4a7c15));
        j.next_u64(); // discard one output to decouple nearby seeds
        j
    }

    /// The next raw 64-bit output (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// True with probability `num / denom`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }

    /// Randomly perturbs the schedule: sometimes an OS yield, sometimes
    /// a short busy spin, often nothing. Call between operations to
    /// shake out interleavings while keeping rounds fast.
    pub fn stagger(&mut self) {
        match self.below(8) {
            0 => std::thread::yield_now(),
            1 | 2 => {
                for _ in 0..self.below(64) {
                    std::hint::spin_loop();
                }
            }
            _ => {}
        }
    }
}

/// Per-thread context handed to a round's workload closure.
#[derive(Debug)]
pub struct ThreadCtx<'a> {
    /// This thread's index in `0..threads`.
    pub index: usize,
    /// Total number of threads in the round.
    pub threads: usize,
    /// The round's shared clock.
    pub clock: &'a Clock,
    /// This thread's deterministic jitter stream.
    pub jitter: Jitter,
}

/// Runs one barrier-started round of `threads` workers and returns the
/// per-thread op logs (indexed by thread).
///
/// Every worker seeds its [`Jitter`] from `(seed, index)`, blocks on a
/// shared [`Barrier`] so the race window opens simultaneously for all
/// threads, then runs `body` with a fresh [`OpLog`]. Timestamps come
/// from one shared [`Clock`] created before the threads start.
pub fn run_round<O, F>(threads: usize, seed: u64, body: F) -> Vec<Vec<TimedOp<O>>>
where
    O: Send,
    F: Fn(&mut ThreadCtx<'_>, &mut OpLog<O>) + Sync,
{
    assert!(threads > 0, "a round needs at least one thread");
    let clock = Clock::new();
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|index| {
                let clock = &clock;
                let barrier = &barrier;
                let body = &body;
                scope.spawn(move || {
                    let mut ctx = ThreadCtx {
                        index,
                        threads,
                        clock,
                        jitter: Jitter::for_thread(seed, index),
                    };
                    let mut log = OpLog::with_capacity(64);
                    barrier.wait();
                    body(&mut ctx, &mut log);
                    log.into_ops()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_and_decorrelated() {
        let a: Vec<u64> = {
            let mut j = Jitter::seed(42);
            (0..8).map(|_| j.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut j = Jitter::seed(42);
            (0..8).map(|_| j.next_u64()).collect()
        };
        assert_eq!(a, b);
        let t0 = Jitter::for_thread(7, 0).next_u64();
        let t1 = Jitter::for_thread(7, 1).next_u64();
        assert_ne!(t0, t1);
        let mut j = Jitter::seed(1);
        for _ in 0..100 {
            assert!(j.below(10) < 10);
        }
        assert!((0..1000).filter(|_| j.chance(1, 2)).count() > 300);
    }

    #[test]
    fn record_timestamps_bracket_the_call() {
        let clock = Clock::new();
        let mut log = OpLog::with_capacity(4);
        let r = log.record(&clock, || 41 + 1, |r| Some(*r));
        assert_eq!(r, 42);
        let skipped = log.record(&clock, || 7, |_| None::<i32>);
        assert_eq!(skipped, 7);
        let ops = log.into_ops();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].op, 42);
        assert!(ops[0].inv <= ops[0].resp);
    }

    #[test]
    fn run_round_collects_per_thread_logs_in_order() {
        let logs = run_round(4, 99, |ctx, log| {
            for k in 0..5u64 {
                ctx.jitter.stagger();
                let clock = ctx.clock;
                log.record(clock, || ctx.index as u64 * 100 + k, |r| Some(*r));
            }
        });
        assert_eq!(logs.len(), 4);
        for (i, ops) in logs.iter().enumerate() {
            assert_eq!(ops.len(), 5);
            for (k, t) in ops.iter().enumerate() {
                assert_eq!(t.op, i as u64 * 100 + k as u64);
                assert!(t.inv <= t.resp);
            }
            // Within a thread, operations are sequential.
            for w in ops.windows(2) {
                assert!(w[0].resp <= w[1].inv);
            }
        }
    }

    #[test]
    fn run_round_is_reproducible_modulo_time() {
        // Same seed ⇒ same op sequence (timestamps differ, ops do not).
        let run = || {
            run_round(2, 5, |ctx, log| {
                for _ in 0..10 {
                    let v = ctx.jitter.below(1000);
                    log.record(ctx.clock, || v, |r| Some(*r));
                }
            })
            .into_iter()
            .map(|ops| ops.into_iter().map(|t| t.op).collect::<Vec<_>>())
            .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
