//! Per-operation latency instrumentation (`feature = "perf"`).
//!
//! The performance experiments (`e12_perf` in `compass-bench`) need
//! per-op latency distributions from the native structures without
//! perturbing them when nobody is measuring. This module provides:
//!
//! * [`LatencyHist`] — a fixed-point, HDR-style log-linear latency
//!   histogram: 32 sub-buckets per power of two (≤ ~3% relative error),
//!   O(1) record, mergeable like `orc11::StepHistogram`, with
//!   p50/p90/p99/p999/max accessors. Always compiled (it is just a
//!   struct); the recording machinery below is what the feature gates.
//! * [`op`] — the instrumentation hook wrapped around every public
//!   structure operation (`ConcurrentQueue::enqueue`, `Worker::push`,
//!   ...). Without `feature = "perf"` it is an `#[inline(always)]`
//!   pass-through — the timing code does not exist in the binary. With
//!   the feature but no active session it is one relaxed atomic load.
//!   Only inside an active session does it timestamp the operation and
//!   record into a *thread-local* histogram — no shared state on the
//!   hot path.
//! * Session management ([`start`], [`flush_thread`], [`finish`]) —
//!   thread-local histograms are merged into a global collector when
//!   each thread flushes at round end, and [`finish`] returns the
//!   per-[`OpKind`] totals.
//!
//! Like the `recorder` module, this is deliberately dependency-free and
//! off by default; `tests/perf_free.rs` in `compass-bench` pins that an
//! idle session leaves checker reports and replay bundles byte-identical.

/// The operation vocabulary of the instrumented structures.
///
/// One histogram per kind per session: the experiments bench one
/// structure at a time, so kinds do not need to carry the structure's
/// identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum OpKind {
    /// A FIFO enqueue ([`crate::ConcurrentQueue::enqueue`]).
    QueueEnq = 0,
    /// A FIFO dequeue attempt ([`crate::ConcurrentQueue::dequeue`]).
    QueueDeq,
    /// A LIFO push ([`crate::ConcurrentStack::push`]).
    StackPush,
    /// A LIFO pop attempt ([`crate::ConcurrentStack::pop`]).
    StackPop,
    /// A deque owner push ([`crate::Worker::push`]).
    DequePush,
    /// A deque owner pop attempt ([`crate::Worker::pop`]).
    DequePop,
    /// A steal attempt ([`crate::Stealer::steal`]), including retries.
    DequeSteal,
    /// An exchange attempt ([`crate::Exchanger::exchange`]).
    Exchange,
    /// A blocking SPSC push ([`crate::Producer::push`]).
    SpscPush,
    /// An SPSC pop attempt ([`crate::Consumer::try_pop`]).
    SpscPop,
}

/// Number of [`OpKind`] variants (histogram array size).
pub const N_KINDS: usize = 10;

impl OpKind {
    /// All kinds, in discriminant order.
    pub const ALL: [OpKind; N_KINDS] = [
        OpKind::QueueEnq,
        OpKind::QueueDeq,
        OpKind::StackPush,
        OpKind::StackPop,
        OpKind::DequePush,
        OpKind::DequePop,
        OpKind::DequeSteal,
        OpKind::Exchange,
        OpKind::SpscPush,
        OpKind::SpscPop,
    ];

    /// Stable snake_case name (used as a JSON key by `compass-bench`).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::QueueEnq => "enqueue",
            OpKind::QueueDeq => "dequeue",
            OpKind::StackPush => "push",
            OpKind::StackPop => "pop",
            OpKind::DequePush => "deque_push",
            OpKind::DequePop => "deque_pop",
            OpKind::DequeSteal => "steal",
            OpKind::Exchange => "exchange",
            OpKind::SpscPush => "spsc_push",
            OpKind::SpscPop => "spsc_pop",
        }
    }
}

/// Sub-bucket resolution: 2^5 = 32 sub-buckets per power of two, so a
/// bucket's width is at most `lo / 32` — ≤ ~3.1% relative error on any
/// reported percentile.
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Largest exactly-bucketed exponent: values at or above 2^43 ns
/// (~2.4 hours) clamp into the final bucket.
const G_MAX: u32 = 42;
const N_BUCKETS: usize = ((G_MAX - SUB_BITS + 2) as usize) * SUB;

/// A fixed-point log-linear ("HDR-style") latency histogram.
///
/// Values are nanoseconds. Bucket layout: values below 32 map to unit
/// buckets; a value with highest set bit `g >= 5` lands in one of 32
/// sub-buckets of width `2^(g-5)`. Recording is O(1) (a `leading_zeros`
/// and a shift); merging adds bucket counts, so merge order never
/// matters. Percentiles report the upper bound of the target bucket
/// (clamped to the exact observed maximum), so they never under-report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHist {
    buckets: Box<[u64]>,
    count: u64,
    total: u64,
    max: u64,
    min: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist {
            buckets: vec![0; N_BUCKETS].into_boxed_slice(),
            count: 0,
            total: 0,
            max: 0,
            min: u64::MAX,
        }
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHist::default()
    }

    /// Bucket index for a nanosecond value.
    fn index(ns: u64) -> usize {
        if ns < SUB as u64 {
            return ns as usize;
        }
        let g = 63 - ns.leading_zeros();
        if g > G_MAX {
            return N_BUCKETS - 1;
        }
        let sub = (ns >> (g - SUB_BITS)) as usize & (SUB - 1);
        ((g - SUB_BITS + 1) as usize) * SUB + sub
    }

    /// `(lo, hi)` inclusive value bounds of bucket `i`.
    fn bounds(i: usize) -> (u64, u64) {
        if i < SUB {
            return (i as u64, i as u64);
        }
        let g = (i / SUB) as u32 + SUB_BITS - 1;
        let sub = (i % SUB) as u64;
        let lo = (SUB as u64 + sub) << (g - SUB_BITS);
        (lo, lo + (1u64 << (g - SUB_BITS)) - 1)
    }

    /// Records one latency sample, O(1).
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::index(ns)] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(ns);
        self.max = self.max.max(ns);
        self.min = self.min.min(ns);
    }

    /// Adds `other`'s recordings into `self` (commutative).
    pub fn merge(&mut self, other: &LatencyHist) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact maximum recorded value (0 if empty).
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Exact minimum recorded value (0 if empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean value (0.0 if empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`): the upper bound of the bucket
    /// holding the sample of rank `ceil(q * count)`, clamped to the
    /// exact observed maximum. 0 if empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Median latency.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Non-empty buckets as `(lo, hi_inclusive, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bounds(i);
                (lo, hi, c)
            })
            .collect()
    }
}

#[cfg(feature = "perf")]
mod session {
    use super::{LatencyHist, OpKind, N_KINDS};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::Instant;

    /// Whether a recording session is active — the only thing the hook
    /// checks on the (overwhelmingly common) idle path.
    static ENABLED: AtomicBool = AtomicBool::new(false);
    /// Session generation, so a thread-local histogram left over from an
    /// earlier session is discarded rather than merged into a later one.
    static EPOCH: AtomicU64 = AtomicU64::new(0);
    /// Flushed per-kind histograms, merged across threads.
    static MERGED: Mutex<Vec<LatencyHist>> = Mutex::new(Vec::new());

    thread_local! {
        static LOCAL: RefCell<Option<(u64, Vec<LatencyHist>)>> = const { RefCell::new(None) };
    }

    /// Whether a recording session is currently active.
    pub fn active() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Times `f` and records its latency into this thread's histogram
    /// for `kind` — or just runs `f` when no session is active.
    #[inline]
    pub fn op<R>(kind: OpKind, f: impl FnOnce() -> R) -> R {
        if !ENABLED.load(Ordering::Relaxed) {
            return f();
        }
        record_op(kind, f)
    }

    fn record_op<R>(kind: OpKind, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        let ns = t0.elapsed().as_nanos() as u64;
        let epoch = EPOCH.load(Ordering::Acquire);
        LOCAL.with(|cell| {
            let mut slot = cell.borrow_mut();
            let stale = !matches!(&*slot, Some((e, _)) if *e == epoch);
            if stale {
                *slot = Some((epoch, vec![LatencyHist::new(); N_KINDS]));
            }
            slot.as_mut().expect("just initialized").1[kind as usize].record(ns);
        });
        r
    }

    /// Starts a recording session.
    ///
    /// # Panics
    ///
    /// Panics if a session is already active (sessions are global and
    /// must not nest).
    pub fn start() {
        assert!(
            !ENABLED.swap(true, Ordering::SeqCst),
            "a perf recording session is already active"
        );
        EPOCH.fetch_add(1, Ordering::Release);
        let mut merged = MERGED.lock().unwrap();
        merged.clear();
        merged.resize(N_KINDS, LatencyHist::new());
    }

    /// Merges this thread's histograms into the session collector and
    /// clears them. Each participating thread calls this once, at the
    /// end of its round, while the session is still active; a no-op when
    /// idle or when the thread recorded nothing this session.
    pub fn flush_thread() {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        let epoch = EPOCH.load(Ordering::Acquire);
        let taken = LOCAL.with(|cell| cell.borrow_mut().take());
        if let Some((e, hists)) = taken {
            if e != epoch {
                return;
            }
            let mut merged = MERGED.lock().unwrap();
            for (m, h) in merged.iter_mut().zip(hists.iter()) {
                m.merge(h);
            }
        }
    }

    /// Ends the session and returns the non-empty per-kind histograms.
    /// Flushes the calling thread first, so a single-threaded session
    /// needs no explicit [`flush_thread`].
    pub fn finish() -> Vec<(OpKind, LatencyHist)> {
        flush_thread();
        ENABLED.store(false, Ordering::SeqCst);
        let mut merged = MERGED.lock().unwrap();
        let hists = std::mem::take(&mut *merged);
        OpKind::ALL
            .iter()
            .zip(hists)
            .filter(|(_, h)| !h.is_empty())
            .map(|(&k, h)| (k, h))
            .collect()
    }
}

#[cfg(feature = "perf")]
pub use session::{active, finish, flush_thread, op, start};

/// Without `feature = "perf"` the hook is an inlined pass-through: the
/// timing code is compiled out of the structures entirely.
#[cfg(not(feature = "perf"))]
#[inline(always)]
pub fn op<R>(_kind: OpKind, f: impl FnOnce() -> R) -> R {
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_contain() {
        let mut last = 0usize;
        for v in 0..100_000u64 {
            let i = LatencyHist::index(v);
            assert!(i >= last, "index not monotone at {v}");
            last = i;
            let (lo, hi) = LatencyHist::bounds(i);
            assert!(lo <= v && v <= hi, "bounds({i}) = ({lo},{hi}) misses {v}");
        }
        // Bucket bounds tile the value space in order.
        for i in 1..N_BUCKETS {
            assert_eq!(
                LatencyHist::bounds(i).0,
                LatencyHist::bounds(i - 1).1 + 1,
                "buckets {i} and {} not adjacent",
                i - 1
            );
        }
        // Huge values clamp into the final bucket.
        assert_eq!(LatencyHist::index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn percentiles_match_sorted_vector_oracle() {
        // Deterministic pseudo-random samples via splitmix64.
        let mut state = 7u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let mut h = LatencyHist::new();
        let mut samples: Vec<u64> = (0..10_000).map(|_| next() % 5_000_000).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let oracle = samples[rank - 1];
            let got = h.percentile(q);
            // Never under-reports, and over-reports by at most one
            // sub-bucket width (1/32 relative) plus rounding slack.
            assert!(got >= oracle, "p{q}: {got} < oracle {oracle}");
            let slack = oracle / 16 + 1;
            assert!(
                got <= oracle + slack,
                "p{q}: {got} > oracle {oracle} + {slack}"
            );
        }
        assert_eq!(h.percentile(1.0), *samples.last().unwrap());
        assert_eq!(h.max_ns(), *samples.last().unwrap());
        assert_eq!(h.min_ns(), samples[0]);
    }

    #[test]
    fn merge_is_commutative_and_counts_add() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        for v in [1u64, 5, 40, 900, 70_000, 3_000_000] {
            a.record(v);
        }
        for v in [2u64, 33, 41, 65_000, 9_999_999] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), a.count() + b.count());
        assert_eq!(ab.max_ns(), 9_999_999);
        assert_eq!(ab.min_ns(), 1);
    }

    #[test]
    fn empty_hist_is_all_zero() {
        let h = LatencyHist::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.min_ns(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn idle_hook_is_a_pass_through() {
        // Session-semantics tests (exact counts, cross-session epoch
        // hygiene) live in `compass-bench/tests/perf_free.rs`, where no
        // unrelated test records concurrently; this crate's stress tests
        // exercise instrumented trait methods in parallel, so asserting
        // global session state here would race.
        assert_eq!(op(OpKind::QueueEnq, || 41 + 1), 42);
    }
}
