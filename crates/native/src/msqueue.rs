//! The Michael-Scott queue on real atomics, release/acquire throughout
//! (the implementation the paper verifies against `LAT_hb^abs`, §3.2),
//! with epoch-based reclamation.

use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

use crate::ebr::{self as epoch, Atomic, Owned, Shared};

use crate::ConcurrentQueue;

struct Node<T> {
    /// Uninitialized in the sentinel; initialized in every linked node
    /// until its value is dequeued.
    data: MaybeUninit<T>,
    next: Atomic<Node<T>>,
}

/// A Michael-Scott queue (see module docs).
pub struct MsQueue<T> {
    head: Atomic<Node<T>>,
    tail: Atomic<Node<T>>,
}

impl<T> fmt::Debug for MsQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MsQueue")
    }
}

unsafe impl<T: Send> Send for MsQueue<T> {}
unsafe impl<T: Send> Sync for MsQueue<T> {}

impl<T> Default for MsQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MsQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let sentinel = Owned::new(Node {
            data: MaybeUninit::uninit(),
            next: Atomic::null(),
        });
        let guard = unsafe { epoch::unprotected() };
        let sentinel = sentinel.into_shared(guard);
        MsQueue {
            head: Atomic::from(sentinel),
            tail: Atomic::from(sentinel),
        }
    }

    /// Enqueues `v`. The commit point is the release CAS linking the node
    /// (§3.2).
    pub fn push(&self, v: T) {
        let guard = &epoch::pin();
        let mut node = Owned::new(Node {
            data: MaybeUninit::new(v),
            next: Atomic::null(),
        });
        loop {
            let tail = self.tail.load(Acquire, guard);
            let tail_ref = unsafe { tail.deref() };
            let next = tail_ref.next.load(Acquire, guard);
            if !next.is_null() {
                // Tail lags: help swing it.
                let _ = self
                    .tail
                    .compare_exchange(tail, next, Release, Relaxed, guard);
                continue;
            }
            match tail_ref
                .next
                .compare_exchange(Shared::null(), node, Release, Relaxed, guard)
            {
                Ok(new) => {
                    let _ = self
                        .tail
                        .compare_exchange(tail, new, Release, Relaxed, guard);
                    return;
                }
                Err(e) => node = e.new,
            }
        }
    }

    /// Dequeues the oldest value. The commit point is the acquire-release
    /// CAS swinging `head`.
    pub fn pop(&self) -> Option<T> {
        let guard = &epoch::pin();
        loop {
            let head = self.head.load(Acquire, guard);
            let head_ref = unsafe { head.deref() };
            let next = head_ref.next.load(Acquire, guard);
            if next.is_null() {
                return None;
            }
            if self
                .head
                .compare_exchange(head, next, Release, Acquire, guard)
                .is_ok()
            {
                // `next` is the new sentinel; its data is ours.
                let data = unsafe { std::ptr::read(next.deref().data.as_ptr()) };
                unsafe { guard.defer_destroy(head) };
                return Some(data);
            }
        }
    }
}

impl<T> Drop for MsQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: free every node; drop the data of all but the
        // sentinel (whose data slot is empty).
        let guard = unsafe { epoch::unprotected() };
        let mut cur = self.head.load(Relaxed, guard);
        let mut is_sentinel = true;
        while !cur.is_null() {
            let node = unsafe { cur.into_owned() };
            let next = node.next.load(Relaxed, guard);
            if !is_sentinel {
                unsafe { std::ptr::drop_in_place(node.data.as_ptr() as *mut T) };
            }
            is_sentinel = false;
            drop(node);
            cur = next;
        }
    }
}

impl<T: Send> ConcurrentQueue<T> for MsQueue<T> {
    fn enqueue(&self, v: T) {
        crate::perf::op(crate::perf::OpKind::QueueEnq, || self.push(v));
    }

    fn dequeue(&self) -> Option<T> {
        crate::perf::op(crate::perf::OpKind::QueueDeq, || self.pop())
    }
}

/// A deliberately broken Michael-Scott queue — the *positive control*
/// for the runtime conformance harness (`feature = "weak-variants"`).
///
/// `push` is the correct MS enqueue. `pop` replaces the atomic
/// head-swinging CAS with a check-then-act sequence: load `head`, read
/// the value, re-check that `head` is unchanged, yield (widening the
/// check-to-act gap), then *plain-store* the new head. Concurrent pops
/// can pass the stale check together and both return the same element —
/// a duplicated dequeue that `compass::conform` must flag
/// (`CONFORM-QUEUE-DUP`). A stale store can also rewind `head` past
/// another pop's progress, re-exposing already-taken elements — again a
/// duplication, and again flagged.
///
/// The weakness is algorithmic (time-of-check/time-of-use), not a bare
/// memory-ordering downgrade: ordering-only weakenings compile to the
/// same instructions on x86-TSO hosts and would make the control
/// nondeterministic. Two design choices keep the *logic* bug from ever
/// becoming a *memory* bug: the element type is `Copy` (so the double
/// `ptr::read` of a duplicated node never double-drops), and popped
/// nodes are never retired (racing pops may both unlink the same node;
/// retiring it twice would be unsound even for a leaking shim).
#[cfg(feature = "weak-variants")]
pub struct WeakMsQueue<T: Copy> {
    head: Atomic<Node<T>>,
    tail: Atomic<Node<T>>,
}

#[cfg(feature = "weak-variants")]
impl<T: Copy> fmt::Debug for WeakMsQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("WeakMsQueue")
    }
}

#[cfg(feature = "weak-variants")]
unsafe impl<T: Copy + Send> Send for WeakMsQueue<T> {}
#[cfg(feature = "weak-variants")]
unsafe impl<T: Copy + Send> Sync for WeakMsQueue<T> {}

#[cfg(feature = "weak-variants")]
impl<T: Copy> Default for WeakMsQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(feature = "weak-variants")]
impl<T: Copy> WeakMsQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let sentinel = Owned::new(Node {
            data: MaybeUninit::uninit(),
            next: Atomic::null(),
        });
        let guard = unsafe { epoch::unprotected() };
        let sentinel = sentinel.into_shared(guard);
        WeakMsQueue {
            head: Atomic::from(sentinel),
            tail: Atomic::from(sentinel),
        }
    }

    /// Enqueues `v` — the *correct* MS enqueue, identical to
    /// [`MsQueue::push`].
    pub fn push(&self, v: T) {
        let guard = &epoch::pin();
        let mut node = Owned::new(Node {
            data: MaybeUninit::new(v),
            next: Atomic::null(),
        });
        loop {
            let tail = self.tail.load(Acquire, guard);
            let tail_ref = unsafe { tail.deref() };
            let next = tail_ref.next.load(Acquire, guard);
            if !next.is_null() {
                let _ = self
                    .tail
                    .compare_exchange(tail, next, Release, Relaxed, guard);
                continue;
            }
            match tail_ref
                .next
                .compare_exchange(Shared::null(), node, Release, Relaxed, guard)
            {
                Ok(new) => {
                    let _ = self
                        .tail
                        .compare_exchange(tail, new, Release, Relaxed, guard);
                    return;
                }
                Err(e) => node = e.new,
            }
        }
    }

    /// Dequeues — DELIBERATELY WRONG. The head swing is a non-atomic
    /// check-then-act (see the type docs): concurrent pops can both take
    /// the same element.
    pub fn pop(&self) -> Option<T> {
        let guard = &epoch::pin();
        loop {
            let head = self.head.load(Acquire, guard);
            let next = unsafe { head.deref() }.next.load(Acquire, guard);
            if next.is_null() {
                return None;
            }
            // Read the value before winning the race...
            let data = unsafe { std::ptr::read(next.deref().data.as_ptr()) };
            // ..."confirm" with a stale check instead of a CAS...
            if self.head.load(Acquire, guard) == head {
                // ...and yield in the check-to-act gap, so concurrent
                // pops pass the same stale check together...
                std::thread::yield_now();
                self.head.store(next, Release);
                // Never retired: a racing pop may hold the same node.
                return Some(data);
            }
        }
    }
}

#[cfg(feature = "weak-variants")]
impl<T: Copy> Drop for WeakMsQueue<T> {
    fn drop(&mut self) {
        // Free the reachable suffix; `T: Copy` means the data slots need
        // no dropping. Nodes unlinked by `pop` are leaked (module docs
        // of `ebr` — the shim leaks retirements anyway).
        let guard = unsafe { epoch::unprotected() };
        let mut cur = self.head.load(Relaxed, guard);
        while !cur.is_null() {
            let node = unsafe { cur.into_owned() };
            let next = node.next.load(Relaxed, guard);
            drop(node);
            cur = next;
        }
    }
}

#[cfg(feature = "weak-variants")]
impl<T: Copy + Send> ConcurrentQueue<T> for WeakMsQueue<T> {
    fn enqueue(&self, v: T) {
        crate::perf::op(crate::perf::OpKind::QueueEnq, || self.push(v));
    }

    fn dequeue(&self) -> Option<T> {
        crate::perf::op(crate::perf::OpKind::QueueDeq, || self.pop())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::queue_stress;

    #[test]
    fn fifo_order() {
        let q = MsQueue::new();
        assert_eq!(q.pop(), None);
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.push(4);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drop_releases_remaining_elements() {
        // Boxed values: Miri/leak checkers would catch a leak here.
        let q = MsQueue::new();
        for i in 0..100 {
            q.push(Box::new(i));
        }
        for _ in 0..30 {
            q.pop().unwrap();
        }
        drop(q);
    }

    #[test]
    fn concurrent_stress() {
        queue_stress(&MsQueue::new(), 4, 2, 2000);
    }

    #[test]
    fn spsc_preserves_order() {
        let q = MsQueue::new();
        std::thread::scope(|scope| {
            let q = &q;
            scope.spawn(move || {
                for i in 0..10_000u64 {
                    q.push(i);
                }
            });
            scope.spawn(move || {
                let mut expect = 0u64;
                while expect < 10_000 {
                    if let Some(v) = q.pop() {
                        assert_eq!(v, expect);
                        expect += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            });
        });
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<X: Send + Sync>() {}
        assert_send_sync::<MsQueue<u64>>();
    }

    /// The weak variant is only wrong under contention; single-threaded
    /// it must behave like a FIFO queue (so the conformance harness is
    /// exercising the race, not a broken sequential path).
    #[cfg(feature = "weak-variants")]
    #[test]
    fn weak_variant_is_sequentially_correct() {
        let q = WeakMsQueue::new();
        assert_eq!(q.pop(), None);
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.push(4);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }
}
