//! A bounded single-producer single-consumer ring buffer on real atomics
//! (the Cosmo paper's verification subject, cited in §1): slots are plain
//! memory, synchronized purely by the release/acquire handoff of the two
//! counters.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::AtomicUsize;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::Arc;

use crate::ebr::{Backoff, CachePadded};

struct Inner<T> {
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

/// The producing half of an SPSC ring (not `Clone`: single producer).
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
}

/// The consuming half of an SPSC ring (not `Clone`: single consumer).
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("spsc::Producer")
            .field("capacity", &self.inner.buf.len())
            .finish()
    }
}

impl<T> fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("spsc::Consumer")
    }
}

/// Creates a bounded SPSC ring of the given capacity.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn spsc_ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "capacity must be positive");
    let inner = Arc::new(Inner {
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
        buf: (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
    });
    (
        Producer {
            inner: inner.clone(),
        },
        Consumer { inner },
    )
}

impl<T: Send> Producer<T> {
    /// Tries to enqueue `v`.
    ///
    /// # Errors
    ///
    /// Returns `Err(v)` if the ring is full.
    pub fn try_push(&self, v: T) -> Result<(), T> {
        let q = &*self.inner;
        let t = q.tail.load(Relaxed);
        // Acquire: see the consumer's head advance (and its last read of
        // the slot) before reusing the slot.
        let h = q.head.load(Acquire);
        if t - h == q.buf.len() {
            return Err(v);
        }
        unsafe { (*q.buf[t % q.buf.len()].get()).write(v) };
        // Publication.
        q.tail.store(t + 1, Release);
        Ok(())
    }

    /// Pushes, backing off (spin, then yield) while the ring is full.
    /// One perf sample per completed push: backoff time is part of the
    /// operation's latency.
    pub fn push(&self, v: T) {
        crate::perf::op(crate::perf::OpKind::SpscPush, || {
            let mut v = v;
            let backoff = Backoff::new();
            loop {
                match self.try_push(v) {
                    Ok(()) => return,
                    Err(back) => {
                        v = back;
                        backoff.snooze();
                    }
                }
            }
        })
    }
}

impl<T: Send> Consumer<T> {
    /// Tries to dequeue. One perf sample per *attempt* (misses on an
    /// empty ring are real, cheap operations and are recorded as such).
    pub fn try_pop(&self) -> Option<T> {
        crate::perf::op(crate::perf::OpKind::SpscPop, || {
            let q = &*self.inner;
            let h = q.head.load(Relaxed);
            // Acquire: see the producer's slot write.
            let t = q.tail.load(Acquire);
            if t == h {
                return None;
            }
            let v = unsafe { (*q.buf[h % q.buf.len()].get()).assume_init_read() };
            q.head.store(h + 1, Release);
            Some(v)
        })
    }

    /// Pops, backing off (spin, then yield) while the ring is empty.
    pub fn pop(&self) -> T {
        let backoff = Backoff::new();
        loop {
            if let Some(v) = self.try_pop() {
                return v;
            }
            backoff.snooze();
        }
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        let h = *self.head.get_mut();
        let t = *self.tail.get_mut();
        for i in h..t {
            unsafe { (*self.buf[i % self.buf.len()].get()).assume_init_drop() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_capacity() {
        let (p, c) = spsc_ring::<i32>(2);
        assert_eq!(c.try_pop(), None);
        p.try_push(1).unwrap();
        p.try_push(2).unwrap();
        assert_eq!(p.try_push(3), Err(3));
        assert_eq!(c.try_pop(), Some(1));
        p.try_push(3).unwrap();
        assert_eq!(c.try_pop(), Some(2));
        assert_eq!(c.try_pop(), Some(3));
        assert_eq!(c.try_pop(), None);
    }

    #[test]
    fn drop_releases_in_flight_elements() {
        let (p, c) = spsc_ring(8);
        for i in 0..6 {
            p.try_push(Box::new(i)).unwrap();
        }
        c.try_pop().unwrap();
        drop((p, c));
    }

    #[test]
    fn cross_thread_order_preserved() {
        const N: u64 = 50_000;
        let (p, c) = spsc_ring::<u64>(64);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..N {
                    p.push(i);
                }
            });
            scope.spawn(move || {
                for expect in 0..N {
                    assert_eq!(c.pop(), expect, "FIFO violated");
                }
                assert_eq!(c.try_pop(), None);
            });
        });
    }
}
