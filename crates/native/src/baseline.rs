//! Coarse-grained lock-based baselines for the benchmarks.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

use crate::{ConcurrentQueue, ConcurrentStack};

/// A stack guarded by one mutex — the baseline the lock-free structures
/// are compared against.
pub struct MutexStack<T> {
    inner: Mutex<Vec<T>>,
}

impl<T> fmt::Debug for MutexStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MutexStack")
    }
}

impl<T> Default for MutexStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MutexStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        MutexStack {
            inner: Mutex::new(Vec::new()),
        }
    }
}

impl<T: Send> ConcurrentStack<T> for MutexStack<T> {
    fn push(&self, v: T) {
        crate::perf::op(crate::perf::OpKind::StackPush, || {
            self.inner.lock().unwrap().push(v)
        });
    }

    fn pop(&self) -> Option<T> {
        crate::perf::op(crate::perf::OpKind::StackPop, || {
            self.inner.lock().unwrap().pop()
        })
    }
}

/// A queue guarded by one mutex.
pub struct MutexQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> fmt::Debug for MutexQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MutexQueue")
    }
}

impl<T> Default for MutexQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MutexQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        MutexQueue {
            inner: Mutex::new(VecDeque::new()),
        }
    }
}

impl<T: Send> ConcurrentQueue<T> for MutexQueue<T> {
    fn enqueue(&self, v: T) {
        crate::perf::op(crate::perf::OpKind::QueueEnq, || {
            self.inner.lock().unwrap().push_back(v)
        });
    }

    fn dequeue(&self) -> Option<T> {
        crate::perf::op(crate::perf::OpKind::QueueDeq, || {
            self.inner.lock().unwrap().pop_front()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{queue_stress, stack_stress};

    #[test]
    fn mutex_stack_lifo() {
        let s = MutexStack::new();
        s.push(1);
        s.push(2);
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn mutex_queue_fifo() {
        let q = MutexQueue::new();
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn mutex_stack_stress() {
        stack_stress(&MutexStack::new(), 4, 2, 1000);
    }

    #[test]
    fn mutex_queue_stress() {
        queue_stress(&MutexQueue::new(), 4, 2, 1000);
    }
}
