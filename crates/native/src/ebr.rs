//! A minimal, dependency-free stand-in for the slice of the
//! `crossbeam-epoch` / `crossbeam-utils` API this crate uses.
//!
//! The lock-free structures here are *benchmark subjects and oracles*, not
//! a reclamation library: what matters is that their atomics use the exact
//! access modes the paper verifies and that values are never duplicated or
//! dropped twice. Accordingly, [`Guard::defer_destroy`] **leaks** retired
//! nodes instead of reclaiming them — the only behaviour that is sound
//! without a real epoch protocol — while the `unprotected` owner-only
//! paths (constructors and `Drop` impls) free eagerly as before. Workloads
//! in this repository retire a few thousand small nodes per test, so the
//! leak is bounded and irrelevant; swap in a real EBR crate if these types
//! ever back a long-running service.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicPtr, Ordering};

/// A pinned-epoch token. In this shim pinning is a no-op; the token only
/// scopes the lifetimes of [`Shared`] pointers, exactly like the real API.
#[derive(Debug)]
pub struct Guard {
    _priv: (),
}

impl Guard {
    /// Retires `ptr`. This shim leaks it (see the module docs) — the
    /// pointer stays valid forever, which trivially satisfies the safety
    /// contract of concurrent readers.
    ///
    /// # Safety
    ///
    /// As in `crossbeam-epoch`: `ptr` must have been unlinked such that no
    /// new reference to it can be created.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        let _ = ptr;
    }
}

/// Pins the current thread (no-op shim) and returns a [`Guard`].
pub fn pin() -> Guard {
    Guard { _priv: () }
}

static UNPROTECTED: Guard = Guard { _priv: () };

/// Returns a guard usable without pinning.
///
/// # Safety
///
/// Callers must have exclusive access to the data structure (e.g. inside
/// `Drop` or a constructor), as with `crossbeam_epoch::unprotected`.
pub unsafe fn unprotected() -> &'static Guard {
    &UNPROTECTED
}

/// An owned, heap-allocated pointer (the shim's `Box` with a raw escape
/// hatch).
pub struct Owned<T> {
    ptr: *mut T,
}

impl<T> Owned<T> {
    /// Allocates `value` on the heap.
    pub fn new(value: T) -> Self {
        Owned {
            ptr: Box::into_raw(Box::new(value)),
        }
    }

    /// Converts into a [`Shared`] tied to `guard`'s lifetime, giving up
    /// ownership.
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        let ptr = self.ptr;
        std::mem::forget(self);
        Shared {
            ptr,
            _marker: PhantomData,
        }
    }
}

impl<T> Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.ptr }
    }
}

impl<T> DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.ptr }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        drop(unsafe { Box::from_raw(self.ptr) });
    }
}

impl<T: fmt::Debug> fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A shared pointer valid for the guard lifetime `'g`. May be null.
pub struct Shared<'g, T> {
    ptr: *mut T,
    _marker: PhantomData<&'g T>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null shared pointer.
    pub fn null() -> Self {
        Shared {
            ptr: std::ptr::null_mut(),
            _marker: PhantomData,
        }
    }

    /// Whether the pointer is null.
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    /// Dereferences.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and the pointee valid.
    pub unsafe fn deref(&self) -> &'g T {
        &*self.ptr
    }

    /// `Some(&T)` unless null.
    ///
    /// # Safety
    ///
    /// The pointee, if any, must be valid.
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        self.ptr.as_ref()
    }

    /// Reclaims ownership.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null, uniquely owned by the caller, and not
    /// accessed afterwards.
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.ptr.is_null());
        Owned { ptr: self.ptr }
    }
}

impl<T> fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shared({:p})", self.ptr)
    }
}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.ptr == other.ptr
    }
}
impl<T> Eq for Shared<'_, T> {}

/// Types convertible to/from a raw pointer — implemented by [`Owned`] and
/// [`Shared`], the two pointer kinds accepted as the *new* value of
/// [`Atomic::compare_exchange`].
pub trait Pointer<T> {
    /// Consumes self into a raw pointer.
    fn into_ptr(self) -> *mut T;
    /// Rebuilds from a raw pointer.
    ///
    /// # Safety
    ///
    /// `ptr` must have come from `into_ptr` of the same impl.
    unsafe fn from_ptr(ptr: *mut T) -> Self;
}

impl<T> Pointer<T> for Owned<T> {
    fn into_ptr(self) -> *mut T {
        let p = self.ptr;
        std::mem::forget(self);
        p
    }
    unsafe fn from_ptr(ptr: *mut T) -> Self {
        Owned { ptr }
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_ptr(self) -> *mut T {
        self.ptr
    }
    unsafe fn from_ptr(ptr: *mut T) -> Self {
        Shared {
            ptr,
            _marker: PhantomData,
        }
    }
}

/// The error of a failed [`Atomic::compare_exchange`]: the value actually
/// observed plus the not-installed new pointer, handed back for reuse.
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value the atomic actually held.
    pub current: Shared<'g, T>,
    /// The new value that was not installed, returned to the caller.
    pub new: P,
}

impl<T, P: Pointer<T>> fmt::Debug for CompareExchangeError<'_, T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompareExchangeError")
            .field("current", &self.current.ptr)
            .finish_non_exhaustive()
    }
}

/// An atomic nullable pointer to a heap node.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

impl<T> Atomic<T> {
    /// The null atomic pointer.
    pub fn null() -> Self {
        Atomic {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Loads a [`Shared`] scoped to `guard`.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    /// Stores a shared pointer.
    pub fn store(&self, new: Shared<'_, T>, ord: Ordering) {
        self.ptr.store(new.ptr, ord);
    }

    /// Compare-and-exchange: installs `new` if the current value is
    /// `current`; on failure returns the observed value and `new` back.
    ///
    /// # Errors
    ///
    /// Returns [`CompareExchangeError`] when the observed value differs
    /// from `current`.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_ptr = new.into_ptr();
        match self
            .ptr
            .compare_exchange(current.ptr, new_ptr, success, failure)
        {
            Ok(_) => Ok(Shared {
                ptr: new_ptr,
                _marker: PhantomData,
            }),
            Err(observed) => Err(CompareExchangeError {
                current: Shared {
                    ptr: observed,
                    _marker: PhantomData,
                },
                new: unsafe { P::from_ptr(new_ptr) },
            }),
        }
    }
}

impl<'g, T> From<Shared<'g, T>> for Atomic<T> {
    fn from(s: Shared<'g, T>) -> Self {
        Atomic {
            ptr: AtomicPtr::new(s.ptr),
        }
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Atomic({:p})", self.ptr.load(Ordering::Relaxed))
    }
}

/// Exponential backoff helper (`crossbeam_utils::Backoff` subset).
#[derive(Debug, Default)]
pub struct Backoff {
    step: std::cell::Cell<u32>,
}

impl Backoff {
    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    /// Fresh backoff state.
    pub fn new() -> Self {
        Backoff::default()
    }

    /// Spins briefly, escalating to `yield_now` once the spin budget is
    /// exhausted.
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= Self::SPIN_LIMIT {
            for _ in 0..1u32 << step {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if step <= Self::YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }
}

/// Pads and aligns a value to 128 bytes to defeat false sharing
/// (`crossbeam_utils::CachePadded` subset).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        CachePadded { value }
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

    #[test]
    fn cas_installs_and_reports_failure() {
        let a: Atomic<u64> = Atomic::null();
        let guard = &pin();
        let one = Owned::new(1u64);
        let installed = a
            .compare_exchange(Shared::null(), one, Release, Relaxed, guard)
            .unwrap();
        assert_eq!(unsafe { *installed.deref() }, 1);
        // Second install against null fails and hands the node back.
        let err = a
            .compare_exchange(Shared::null(), Owned::new(2u64), Release, Relaxed, guard)
            .unwrap_err();
        assert_eq!(unsafe { *err.current.deref() }, 1);
        assert_eq!(*err.new, 2);
        // Unlink and free.
        let cur = a.load(Acquire, guard);
        a.store(Shared::null(), Release);
        drop(unsafe { cur.into_owned() });
    }

    #[test]
    fn owned_roundtrip_and_shared_copy() {
        let guard = unsafe { unprotected() };
        let o = Owned::new(String::from("x"));
        let s = o.into_shared(guard);
        let s2 = s;
        assert_eq!(unsafe { s2.deref() }, "x");
        assert!(!s.is_null());
        drop(unsafe { s.into_owned() });
        assert!(Shared::<u8>::null().is_null());
        assert!(unsafe { Shared::<u8>::null().as_ref() }.is_none());
    }

    #[test]
    fn cache_padded_alignment_and_backoff() {
        let p = CachePadded::new(5u8);
        assert_eq!(*p, 5);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        let b = Backoff::new();
        for _ in 0..20 {
            b.snooze();
        }
    }
}
