//! An offer/response exchanger with helping, on real atomics (§4.2).
//!
//! A thread installs an *offer node* (its value plus a response cell) with
//! a release CAS on the slot. A partner (the *helper*) matches by CASing
//! the response cell from null to a box holding its own value — that
//! single acquire-release CAS is where both exchanges take effect, after
//! which the helper takes the offered value. The offerer (the *helpee*)
//! spins on the response cell; on timeout it withdraws by CASing the cell
//! to a cancellation marker, racing the helper on that same cell, so
//! exactly one of {match, cancel} wins.
//!
//! Ownership discipline: the offer's `give` payload is moved out by
//! whichever thread wins the response CAS (the helper on a match, the
//! offerer on a cancel); the response box is created by the helper and
//! consumed by the helpee. Offer nodes are reclaimed by the helpee via
//! epochs.

use std::fmt;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::AtomicPtr;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};

use crate::ebr::{self as epoch, Atomic, Guard, Owned, Shared};

fn cancelled<T>() -> *mut T {
    1usize as *mut T
}

struct OfferNode<T> {
    /// The offered value; moved out exactly once by the response-CAS
    /// winner.
    give: MaybeUninit<T>,
    /// null → partner's boxed value (match) | `cancelled()` (withdrawn).
    resp: AtomicPtr<T>,
}

/// A single-slot exchanger (see module docs).
pub struct Exchanger<T> {
    slot: Atomic<OfferNode<T>>,
}

impl<T> fmt::Debug for Exchanger<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Exchanger")
    }
}

unsafe impl<T: Send> Send for Exchanger<T> {}
unsafe impl<T: Send> Sync for Exchanger<T> {}

impl<T> Default for Exchanger<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Exchanger<T> {
    /// Creates an exchanger with an empty slot.
    pub fn new() -> Self {
        Exchanger {
            slot: Atomic::null(),
        }
    }
}

impl<T: Send> Exchanger<T> {
    /// Attempts to exchange `v` with another thread, spinning for up to
    /// `patience` iterations while an installed offer waits.
    ///
    /// # Errors
    ///
    /// Returns `Err(v)` (giving the value back) if no partner arrived.
    pub fn exchange(&self, v: T, patience: u32) -> Result<T, T> {
        crate::perf::op(crate::perf::OpKind::Exchange, || {
            let guard = &epoch::pin();
            let node = Owned::new(OfferNode {
                give: MaybeUninit::new(v),
                resp: AtomicPtr::new(ptr::null_mut()),
            });
            match self
                .slot
                .compare_exchange(Shared::null(), node, Release, Acquire, guard)
            {
                Ok(my) => self.wait_as_helpee(my, patience, guard),
                Err(e) => {
                    // We still own the node; move the value back out (the
                    // node's `give` is MaybeUninit, so dropping the shell
                    // cannot double-drop).
                    let v = unsafe { ptr::read(e.new.give.as_ptr()) };
                    let cur = e.current;
                    match unsafe { cur.as_ref() } {
                        Some(offer) => self.try_help(cur, offer, v, guard),
                        None => Err(v),
                    }
                }
            }
        })
    }

    /// Installed path: spin for a partner, withdraw on timeout.
    fn wait_as_helpee(
        &self,
        my: Shared<'_, OfferNode<T>>,
        patience: u32,
        guard: &Guard,
    ) -> Result<T, T> {
        let my_ref = unsafe { my.deref() };
        for _ in 0..patience {
            let p = my_ref.resp.load(Acquire);
            if !p.is_null() {
                return Ok(self.finish_helpee(my, p, guard));
            }
            std::hint::spin_loop();
        }
        match my_ref
            .resp
            .compare_exchange(ptr::null_mut(), cancelled(), AcqRel, Acquire)
        {
            Ok(_) => {
                // Withdrawn: reclaim our value and the node.
                let v = unsafe { ptr::read(my_ref.give.as_ptr()) };
                let _ = self
                    .slot
                    .compare_exchange(my, Shared::null(), Relaxed, Relaxed, guard);
                unsafe { guard.defer_destroy(my) };
                Err(v)
            }
            // A helper matched at the last moment.
            Err(p) => Ok(self.finish_helpee(my, p, guard)),
        }
    }

    /// A partner responded with boxed value `p`: consume it and retire the
    /// offer node (our `give` was taken by the helper).
    fn finish_helpee(&self, my: Shared<'_, OfferNode<T>>, p: *mut T, guard: &Guard) -> T {
        debug_assert!(p != cancelled());
        let their = unsafe { *Box::from_raw(p) };
        let _ = self
            .slot
            .compare_exchange(my, Shared::null(), Relaxed, Relaxed, guard);
        unsafe { guard.defer_destroy(my) };
        their
    }

    /// Helper path: try to match the installed `offer` with our value.
    fn try_help(
        &self,
        cur: Shared<'_, OfferNode<T>>,
        offer: &OfferNode<T>,
        v: T,
        guard: &Guard,
    ) -> Result<T, T> {
        let boxed = Box::into_raw(Box::new(v));
        match offer
            .resp
            .compare_exchange(ptr::null_mut(), boxed, AcqRel, Acquire)
        {
            Ok(_) => {
                // We won: both exchanges took effect at this CAS. Take the
                // offered value (unique: only the resp winner reads it).
                let their = unsafe { ptr::read(offer.give.as_ptr()) };
                let _ = self
                    .slot
                    .compare_exchange(cur, Shared::null(), Relaxed, Relaxed, guard);
                Ok(their)
            }
            Err(_) => {
                // Offer already matched or withdrawn: recover our box.
                let v = unsafe { *Box::from_raw(boxed) };
                Err(v)
            }
        }
    }
}

impl<T> Drop for Exchanger<T> {
    fn drop(&mut self) {
        // In quiescent use the slot is empty (the offerer always clears
        // it before returning). If a node is still installed — e.g. an
        // offering thread panicked — free the shell; the payload's state
        // is unknowable, so it is leaked rather than double-dropped.
        let guard = unsafe { epoch::unprotected() };
        let cur = self.slot.load(Relaxed, guard);
        if !cur.is_null() {
            drop(unsafe { cur.into_owned() });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn lone_exchange_times_out_and_returns_value() {
        let x: Exchanger<String> = Exchanger::new();
        let v = "hello".to_string();
        assert_eq!(x.exchange(v, 10), Err("hello".to_string()));
    }

    #[test]
    fn pair_exchanges_values() {
        let x: Exchanger<u64> = Exchanger::new();
        let mut matched = 0u64;
        for _ in 0..200 {
            std::thread::scope(|scope| {
                let a = scope.spawn(|| x.exchange(1, 10_000));
                let b = scope.spawn(|| x.exchange(2, 10_000));
                let (ra, rb) = (a.join().unwrap(), b.join().unwrap());
                match (ra, rb) {
                    (Ok(va), Ok(vb)) => {
                        assert_eq!(va, 2);
                        assert_eq!(vb, 1);
                        matched += 1;
                    }
                    (Err(va), Err(vb)) => {
                        assert_eq!(va, 1);
                        assert_eq!(vb, 2);
                    }
                    (ra, rb) => panic!("half-matched exchange: {ra:?} {rb:?}"),
                }
            });
        }
        assert!(matched > 0, "some iterations should match");
    }

    #[test]
    fn values_are_moved_not_copied() {
        // Boxed payloads: a duplicated value would double-free under Miri
        // and break the sum check here.
        let x: Exchanger<Box<u64>> = Exchanger::new();
        let total = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for i in 0..4u64 {
                let x = &x;
                let total = &total;
                scope.spawn(move || {
                    let mine = Box::new(i + 1);
                    match x.exchange(mine, 5_000) {
                        Ok(got) | Err(got) => {
                            total.fetch_add(*got, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        // Every value 1..=4 is owned by exactly one thread at the end.
        assert_eq!(total.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
    }

    #[test]
    fn many_threads_no_loss() {
        let x: Exchanger<u64> = Exchanger::new();
        let sum = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for i in 0..8u64 {
                let x = &x;
                let sum = &sum;
                scope.spawn(move || {
                    let mut held = i;
                    for _ in 0..100 {
                        held = match x.exchange(held, 100) {
                            Ok(got) => got,
                            Err(back) => back,
                        };
                    }
                    sum.fetch_add(held, Ordering::Relaxed);
                });
            }
        });
        // Exchanges permute the held values; the multiset sum is invariant.
        assert_eq!(sum.load(Ordering::Relaxed), (0..8).sum::<u64>());
    }
}
