//! # compass-native — the paper's data structures on real atomics
//!
//! Native (`std::sync::atomic`) implementations of the data structures the
//! Compass paper verifies, using the *same access modes* as the paper's
//! implementations:
//!
//! * [`TreiberStack`] — release push CAS, acquire pop CAS (§3.3), with
//!   epoch-based reclamation;
//! * [`MsQueue`] — release/acquire Michael-Scott queue (§3.2);
//! * [`HwQueue`] — bounded Herlihy-Wing queue: acquire-release FAA on the
//!   tail, release slot stores, acquire slot CASes (§3.1);
//! * [`Exchanger`] — offer/response exchanger with helping (§4.2);
//! * [`ElimStack`] — elimination stack = Treiber + an array of exchangers
//!   (§4.1);
//! * [`MutexStack`], [`MutexQueue`] — coarse-grained baselines for the
//!   benchmarks.
//!
//! These are the benchmark subjects of the performance experiments
//! (P1/P2/P3 in `DESIGN.md`); their model-level twins in
//! `compass-structures` are the checked subjects — and, with the
//! `recorder` feature, the *runtime conformance* subjects: the
//! [`recorder`] module records timestamped invocation/response histories
//! that `compass::conform` checks against the paper's consistency
//! specifications (`DESIGN.md` §7). The `weak-variants` feature adds
//! deliberately broken variants ([`WeakMsQueue`]) as positive controls
//! for that harness. The `perf` feature arms the [`perf`] module's
//! per-operation latency hooks used by the `e12_perf` benchmarks.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod baseline;
mod deque;
pub mod ebr;
mod exchanger;
mod hwqueue;
mod msqueue;
pub mod perf;
#[cfg(feature = "recorder")]
pub mod recorder;
mod spsc;
mod stack;

pub use baseline::{MutexQueue, MutexStack};
pub use deque::{chase_lev, Steal, Stealer, Worker};
pub use exchanger::Exchanger;
pub use hwqueue::HwQueue;
pub use msqueue::MsQueue;
#[cfg(feature = "weak-variants")]
pub use msqueue::WeakMsQueue;
pub use spsc::{spsc_ring, Consumer, Producer};
pub use stack::{ElimStack, TreiberStack};

/// A thread-safe LIFO stack.
pub trait ConcurrentStack<T>: Send + Sync {
    /// Pushes a value.
    fn push(&self, v: T);
    /// Pops the most recent value, or `None` if the stack appears empty.
    fn pop(&self) -> Option<T>;
}

/// A thread-safe FIFO queue.
pub trait ConcurrentQueue<T>: Send + Sync {
    /// Enqueues a value.
    fn enqueue(&self, v: T);
    /// Dequeues the oldest value, or `None` if the queue appears empty.
    fn dequeue(&self) -> Option<T>;
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Concurrent stress for stacks: producers push distinct values while
    /// consumers drain; asserts nothing is lost or duplicated.
    pub fn stack_stress<S: ConcurrentStack<u64>>(
        s: &S,
        producers: u64,
        consumers: u64,
        per_thread: u64,
    ) {
        let done = AtomicBool::new(false);
        let popped: Vec<u64> = std::thread::scope(|scope| {
            let consumer_handles: Vec<_> = (0..consumers)
                .map(|_| {
                    let s = &s;
                    let done = &done;
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            match s.pop() {
                                Some(v) => got.push(v),
                                None => {
                                    if done.load(Ordering::Acquire) {
                                        // One final sweep after `done`.
                                        while let Some(v) = s.pop() {
                                            got.push(v);
                                        }
                                        break;
                                    }
                                    std::hint::spin_loop();
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            let producer_handles: Vec<_> = (0..producers)
                .map(|p| {
                    let s = &s;
                    scope.spawn(move || {
                        for i in 0..per_thread {
                            s.push(p * per_thread + i);
                        }
                    })
                })
                .collect();
            for h in producer_handles {
                h.join().unwrap();
            }
            done.store(true, Ordering::Release);
            consumer_handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let expected = producers * per_thread;
        assert_eq!(popped.len() as u64, expected, "lost or duplicated elements");
        let unique: BTreeSet<u64> = popped.iter().copied().collect();
        assert_eq!(unique.len() as u64, expected, "duplicated element");
    }

    /// Concurrent stress for queues: same multiset check, plus per-producer
    /// FIFO (values from one producer are dequeued in their enqueue order).
    pub fn queue_stress<Q: ConcurrentQueue<u64>>(
        q: &Q,
        producers: u64,
        consumers: u64,
        per_thread: u64,
    ) {
        let done = AtomicBool::new(false);
        let outs: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let consumer_handles: Vec<_> = (0..consumers)
                .map(|_| {
                    let q = &q;
                    let done = &done;
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            match q.dequeue() {
                                Some(v) => got.push(v),
                                None => {
                                    if done.load(Ordering::Acquire) {
                                        while let Some(v) = q.dequeue() {
                                            got.push(v);
                                        }
                                        break;
                                    }
                                    std::hint::spin_loop();
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            let producer_handles: Vec<_> = (0..producers)
                .map(|p| {
                    let q = &q;
                    scope.spawn(move || {
                        for i in 0..per_thread {
                            q.enqueue(p * per_thread + i);
                        }
                    })
                })
                .collect();
            for h in producer_handles {
                h.join().unwrap();
            }
            done.store(true, Ordering::Release);
            consumer_handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let total: usize = outs.iter().map(Vec::len).sum();
        assert_eq!(total as u64, producers * per_thread, "lost elements");
        let unique: BTreeSet<u64> = outs.iter().flatten().copied().collect();
        assert_eq!(unique.len(), total, "duplicated element");
        // Per-producer FIFO within each consumer's stream.
        for got in &outs {
            for p in 0..producers {
                let seq: Vec<u64> = got
                    .iter()
                    .copied()
                    .filter(|v| v / per_thread == p)
                    .collect();
                assert!(
                    seq.windows(2).all(|w| w[0] < w[1]),
                    "producer {p} out of order in a consumer stream"
                );
            }
        }
    }
}
