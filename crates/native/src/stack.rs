//! Treiber stack and elimination stack on real atomics.
//!
//! The Treiber stack uses release push CASes and acquire pop CASes
//! (§3.3). The elimination stack (§4.1) composes it with an array of
//! [`Exchanger`]s: an operation that loses its head CAS backs off into an
//! exchange, where a push offer meeting a pop offer eliminates both.
//! Same-sided matches (push/push or pop/pop) simply swap payloads and
//! retry, which preserves the multiset of elements because values are
//! moved, never copied.

use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

use crate::ebr::{self as epoch, Atomic, Owned};

use crate::exchanger::Exchanger;
use crate::ConcurrentStack;

struct Node<T> {
    data: MaybeUninit<T>,
    next: Atomic<Node<T>>,
}

/// A Treiber stack (see module docs).
pub struct TreiberStack<T> {
    head: Atomic<Node<T>>,
}

impl<T> fmt::Debug for TreiberStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TreiberStack")
    }
}

unsafe impl<T: Send> Send for TreiberStack<T> {}
unsafe impl<T: Send> Sync for TreiberStack<T> {}

impl<T> Default for TreiberStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TreiberStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        TreiberStack {
            head: Atomic::null(),
        }
    }

    /// One push attempt; `Err` returns the node for reuse.
    fn try_push_node(&self, node: Owned<Node<T>>) -> Result<(), Owned<Node<T>>> {
        let guard = &epoch::pin();
        let head = self.head.load(Relaxed, guard);
        node.next.store(head, Relaxed);
        match self
            .head
            .compare_exchange(head, node, Release, Relaxed, guard)
        {
            Ok(_) => Ok(()),
            Err(e) => Err(e.new),
        }
    }

    /// Pushes `v` (retrying until the release CAS succeeds).
    pub fn push(&self, v: T) {
        let mut node = Owned::new(Node {
            data: MaybeUninit::new(v),
            next: Atomic::null(),
        });
        loop {
            match self.try_push_node(node) {
                Ok(()) => return,
                Err(n) => node = n,
            }
        }
    }

    /// One pop attempt: `Ok(Some)` popped, `Ok(None)` empty, `Err(())`
    /// lost the race.
    fn try_pop(&self) -> Result<Option<T>, ()> {
        let guard = &epoch::pin();
        let head = self.head.load(Acquire, guard);
        let Some(head_ref) = (unsafe { head.as_ref() }) else {
            return Ok(None);
        };
        let next = head_ref.next.load(Relaxed, guard);
        if self
            .head
            .compare_exchange(head, next, Acquire, Relaxed, guard)
            .is_ok()
        {
            let data = unsafe { std::ptr::read(head_ref.data.as_ptr()) };
            unsafe { guard.defer_destroy(head) };
            Ok(Some(data))
        } else {
            Err(())
        }
    }

    /// Pops the top value (retrying on contention).
    pub fn pop(&self) -> Option<T> {
        loop {
            if let Ok(r) = self.try_pop() {
                return r;
            }
        }
    }
}

impl<T> Drop for TreiberStack<T> {
    fn drop(&mut self) {
        let guard = unsafe { epoch::unprotected() };
        let mut cur = self.head.load(Relaxed, guard);
        while !cur.is_null() {
            let node = unsafe { cur.into_owned() };
            let next = node.next.load(Relaxed, guard);
            unsafe { std::ptr::drop_in_place(node.data.as_ptr() as *mut T) };
            drop(node);
            cur = next;
        }
    }
}

impl<T: Send> ConcurrentStack<T> for TreiberStack<T> {
    fn push(&self, v: T) {
        crate::perf::op(crate::perf::OpKind::StackPush, || {
            TreiberStack::push(self, v)
        });
    }

    fn pop(&self) -> Option<T> {
        crate::perf::op(crate::perf::OpKind::StackPop, || TreiberStack::pop(self))
    }
}

/// The exchange payload of the elimination layer.
enum Offer<T> {
    Push(T),
    Pop,
}

/// An elimination stack (see module docs): a [`TreiberStack`] whose
/// operations back off into an array of [`Exchanger`]s under contention.
pub struct ElimStack<T> {
    base: TreiberStack<T>,
    slots: Box<[Exchanger<Offer<T>>]>,
    /// Spin budget an offer waits in the exchanger.
    patience: u32,
}

impl<T> fmt::Debug for ElimStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ElimStack")
            .field("slots", &self.slots.len())
            .field("patience", &self.patience)
            .finish()
    }
}

impl<T: Send> Default for ElimStack<T> {
    fn default() -> Self {
        Self::new(4, 64)
    }
}

impl<T: Send> ElimStack<T> {
    /// Creates an elimination stack with `slots` exchangers and the given
    /// spin `patience`.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize, patience: u32) -> Self {
        assert!(slots > 0, "need at least one elimination slot");
        ElimStack {
            base: TreiberStack::new(),
            slots: (0..slots).map(|_| Exchanger::new()).collect(),
            patience,
        }
    }

    fn slot(&self) -> &Exchanger<Offer<T>> {
        // Cheap per-thread slot choice.
        let tid = std::thread::current().id();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        use std::hash::{Hash, Hasher};
        tid.hash(&mut h);
        &self.slots[(h.finish() as usize) % self.slots.len()]
    }

    /// Pushes `v`: base stack first, elimination on contention.
    pub fn push(&self, v: T) {
        let mut node = Owned::new(Node {
            data: MaybeUninit::new(v),
            next: Atomic::null(),
        });
        loop {
            node = match self.base.try_push_node(node) {
                Ok(()) => return,
                Err(n) => n,
            };
            // Back off into elimination.
            let v = unsafe { std::ptr::read(node.data.as_ptr()) };
            match self.slot().exchange(Offer::Push(v), self.patience) {
                Ok(Offer::Pop) => {
                    // Eliminated: a popper took our value (it reads it from
                    // the offer we handed over).
                    return;
                }
                Ok(Offer::Push(w)) => {
                    // Push/push match: we now own the partner's value; it
                    // owns ours. Keep pushing what we hold.
                    node.data = MaybeUninit::new(w);
                }
                Err(v) => {
                    node.data = MaybeUninit::new(match v {
                        Offer::Push(v) => v,
                        Offer::Pop => unreachable!("we offered a push"),
                    });
                }
            }
        }
    }

    /// Pops the top value: base stack first, elimination on contention.
    pub fn pop(&self) -> Option<T> {
        loop {
            if let Ok(r) = self.base.try_pop() {
                return r;
            }
            match self.slot().exchange(Offer::Pop, self.patience) {
                Ok(Offer::Push(v)) => return Some(v),
                Ok(Offer::Pop) | Err(_) => {}
            }
        }
    }
}

impl<T: Send> ConcurrentStack<T> for ElimStack<T> {
    fn push(&self, v: T) {
        crate::perf::op(crate::perf::OpKind::StackPush, || ElimStack::push(self, v));
    }

    fn pop(&self) -> Option<T> {
        crate::perf::op(crate::perf::OpKind::StackPop, || ElimStack::pop(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::stack_stress;

    #[test]
    fn treiber_lifo() {
        let s = TreiberStack::new();
        assert_eq!(s.pop(), None);
        s.push(1);
        s.push(2);
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn treiber_drop_releases_elements() {
        let s = TreiberStack::new();
        for i in 0..100 {
            s.push(Box::new(i));
        }
        s.pop().unwrap();
        drop(s);
    }

    #[test]
    fn treiber_stress() {
        stack_stress(&TreiberStack::new(), 4, 2, 2000);
    }

    #[test]
    fn elim_lifo() {
        let s: ElimStack<i32> = ElimStack::new(2, 16);
        assert_eq!(s.pop(), None);
        s.push(1);
        s.push(2);
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn elim_stress() {
        stack_stress(&ElimStack::new(4, 32), 4, 4, 2000);
    }

    #[test]
    fn elim_drop_releases_elements() {
        let s = ElimStack::new(2, 8);
        for i in 0..50 {
            s.push(Box::new(i));
        }
        drop(s);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<X: Send + Sync>() {}
        assert_send_sync::<TreiberStack<u64>>();
        assert_send_sync::<ElimStack<u64>>();
    }
}
