//! Property-based oracle tests: each native structure, driven
//! sequentially by random operation sequences, behaves exactly like its
//! std-collection oracle.

use std::collections::VecDeque;

use proptest::prelude::*;

use compass_native::{
    chase_lev, spsc_ring, ElimStack, HwQueue, MsQueue, MutexQueue, MutexStack, Steal,
    TreiberStack,
};
use compass_native::{ConcurrentQueue, ConcurrentStack};

#[derive(Copy, Clone, Debug)]
enum Op {
    Insert(i64),
    Remove,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![(0i64..100).prop_map(Op::Insert), Just(Op::Remove)],
        0..60,
    )
}

proptest! {
    #[test]
    fn stacks_match_vec_oracle(ops in ops()) {
        let treiber = TreiberStack::new();
        let elim = ElimStack::new(2, 4);
        let mutex = MutexStack::new();
        let mut oracle: Vec<i64> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(v) => {
                    ConcurrentStack::push(&treiber, v);
                    ConcurrentStack::push(&elim, v);
                    ConcurrentStack::push(&mutex, v);
                    oracle.push(v);
                }
                Op::Remove => {
                    let expect = oracle.pop();
                    prop_assert_eq!(ConcurrentStack::pop(&treiber), expect);
                    prop_assert_eq!(ConcurrentStack::pop(&elim), expect);
                    prop_assert_eq!(ConcurrentStack::pop(&mutex), expect);
                }
            }
        }
    }

    #[test]
    fn queues_match_deque_oracle(ops in ops()) {
        let ms = MsQueue::new();
        let hw = HwQueue::new(64);
        let mutex = MutexQueue::new();
        let mut oracle: VecDeque<i64> = VecDeque::new();
        for op in ops {
            match op {
                Op::Insert(v) => {
                    ConcurrentQueue::enqueue(&ms, v);
                    ConcurrentQueue::enqueue(&hw, v);
                    ConcurrentQueue::enqueue(&mutex, v);
                    oracle.push_back(v);
                }
                Op::Remove => {
                    let expect = oracle.pop_front();
                    prop_assert_eq!(ConcurrentQueue::dequeue(&ms), expect);
                    prop_assert_eq!(ConcurrentQueue::dequeue(&hw), expect);
                    prop_assert_eq!(ConcurrentQueue::dequeue(&mutex), expect);
                }
            }
        }
    }

    #[test]
    fn deque_matches_owner_oracle(ops in ops()) {
        // Sequential owner use: the deque behaves as a LIFO for the owner.
        let (worker, stealer) = chase_lev::<i64>(128);
        let mut oracle: VecDeque<i64> = VecDeque::new();
        for op in ops {
            match op {
                Op::Insert(v) => {
                    worker.push(v);
                    oracle.push_back(v);
                }
                Op::Remove => {
                    prop_assert_eq!(worker.pop(), oracle.pop_back());
                }
            }
        }
        // Drain the rest from the top via the stealer: FIFO.
        while let Some(expect) = oracle.pop_front() {
            match stealer.steal() {
                Steal::Stolen(v) => prop_assert_eq!(v, expect),
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
        prop_assert_eq!(stealer.steal(), Steal::Empty);
    }

    #[test]
    fn spsc_ring_matches_oracle(ops in ops()) {
        let (p, c) = spsc_ring::<i64>(128);
        let mut oracle: VecDeque<i64> = VecDeque::new();
        for op in ops {
            match op {
                Op::Insert(v) => {
                    p.try_push(v).unwrap();
                    oracle.push_back(v);
                }
                Op::Remove => {
                    prop_assert_eq!(c.try_pop(), oracle.pop_front());
                }
            }
        }
    }
}
