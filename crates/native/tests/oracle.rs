//! Property-based oracle tests: each native structure, driven
//! sequentially by random operation sequences, behaves exactly like its
//! std-collection oracle.
//!
//! Operation sequences come from a local splitmix64 generator — a pure
//! function of the seed reported in every assertion — so the tests are
//! deterministic and dependency-free.

use std::collections::VecDeque;

use compass_native::{
    chase_lev, spsc_ring, ElimStack, HwQueue, MsQueue, MutexQueue, MutexStack, Steal, TreiberStack,
};
use compass_native::{ConcurrentQueue, ConcurrentStack};

/// Seeds per property.
const CASES: u64 = 200;

#[derive(Copy, Clone, Debug)]
enum Op {
    Insert(i64),
    Remove,
}

struct Sm64(u64);

impl Sm64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Up to 60 operations; inserts of small values and removes equally
/// likely.
fn gen_ops(seed: u64) -> Vec<Op> {
    let mut rng = Sm64(seed);
    let len = (rng.next() % 60) as usize;
    (0..len)
        .map(|_| {
            if rng.next().is_multiple_of(2) {
                Op::Insert((rng.next() % 100) as i64)
            } else {
                Op::Remove
            }
        })
        .collect()
}

#[test]
fn stacks_match_vec_oracle() {
    for seed in 0..CASES {
        let treiber = TreiberStack::new();
        let elim = ElimStack::new(2, 4);
        let mutex = MutexStack::new();
        let mut oracle: Vec<i64> = Vec::new();
        for op in gen_ops(seed) {
            match op {
                Op::Insert(v) => {
                    ConcurrentStack::push(&treiber, v);
                    ConcurrentStack::push(&elim, v);
                    ConcurrentStack::push(&mutex, v);
                    oracle.push(v);
                }
                Op::Remove => {
                    let expect = oracle.pop();
                    assert_eq!(ConcurrentStack::pop(&treiber), expect, "seed {seed}");
                    assert_eq!(ConcurrentStack::pop(&elim), expect, "seed {seed}");
                    assert_eq!(ConcurrentStack::pop(&mutex), expect, "seed {seed}");
                }
            }
        }
    }
}

#[test]
fn queues_match_deque_oracle() {
    for seed in 0..CASES {
        let ms = MsQueue::new();
        let hw = HwQueue::new(64);
        let mutex = MutexQueue::new();
        let mut oracle: VecDeque<i64> = VecDeque::new();
        for op in gen_ops(seed) {
            match op {
                Op::Insert(v) => {
                    ConcurrentQueue::enqueue(&ms, v);
                    ConcurrentQueue::enqueue(&hw, v);
                    ConcurrentQueue::enqueue(&mutex, v);
                    oracle.push_back(v);
                }
                Op::Remove => {
                    let expect = oracle.pop_front();
                    assert_eq!(ConcurrentQueue::dequeue(&ms), expect, "seed {seed}");
                    assert_eq!(ConcurrentQueue::dequeue(&hw), expect, "seed {seed}");
                    assert_eq!(ConcurrentQueue::dequeue(&mutex), expect, "seed {seed}");
                }
            }
        }
    }
}

#[test]
fn deque_matches_owner_oracle() {
    for seed in 0..CASES {
        // Sequential owner use: the deque behaves as a LIFO for the owner.
        let (worker, stealer) = chase_lev::<i64>(128);
        let mut oracle: VecDeque<i64> = VecDeque::new();
        for op in gen_ops(seed) {
            match op {
                Op::Insert(v) => {
                    worker.push(v);
                    oracle.push_back(v);
                }
                Op::Remove => {
                    assert_eq!(worker.pop(), oracle.pop_back(), "seed {seed}");
                }
            }
        }
        // Drain the rest from the top via the stealer: FIFO.
        while let Some(expect) = oracle.pop_front() {
            match stealer.steal() {
                Steal::Stolen(v) => assert_eq!(v, expect, "seed {seed}"),
                other => panic!("seed {seed}: unexpected {other:?}"),
            }
        }
        assert_eq!(stealer.steal(), Steal::Empty, "seed {seed}");
    }
}

#[test]
fn spsc_ring_matches_oracle() {
    for seed in 0..CASES {
        let (p, c) = spsc_ring::<i64>(128);
        let mut oracle: VecDeque<i64> = VecDeque::new();
        for op in gen_ops(seed) {
            match op {
                Op::Insert(v) => {
                    p.try_push(v).unwrap();
                    oracle.push_back(v);
                }
                Op::Remove => {
                    assert_eq!(c.try_pop(), oracle.pop_front(), "seed {seed}");
                }
            }
        }
    }
}
