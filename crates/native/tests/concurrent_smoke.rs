//! Multi-threaded smoke tests: every native structure keeps its
//! elements under 4-thread contention.
//!
//! These are coarse conservation checks — counts balance, nothing is
//! lost, nothing is duplicated — complementing the sequential oracle
//! tests (`tests/oracle.rs`) and the *ordering*-sensitive runtime
//! conformance harness (`compass::conform`, exercised from the
//! workspace-level `tests/conform.rs`). They are also the workload the
//! CI ThreadSanitizer job runs to probe for data races.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use compass_native::{
    chase_lev, spsc_ring, ConcurrentQueue, ConcurrentStack, ElimStack, Exchanger, HwQueue, MsQueue,
    MutexQueue, MutexStack, Steal, TreiberStack,
};

const THREADS: u64 = 4;
const PER_THREAD: u64 = 3_000;

/// Runs `producers` pushers and `consumers` poppers against `push`/`pop`
/// closures; returns everything popped. Producer `p` pushes the distinct
/// values `p*per_thread .. (p+1)*per_thread`.
fn contend(
    producers: u64,
    consumers: u64,
    per_thread: u64,
    push: impl Fn(u64) + Sync,
    pop: impl Fn() -> Option<u64> + Sync,
) -> Vec<u64> {
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let consumer_handles: Vec<_> = (0..consumers)
            .map(|_| {
                let pop = &pop;
                let done = &done;
                scope.spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match pop() {
                            Some(v) => got.push(v),
                            None if done.load(Ordering::Acquire) => {
                                while let Some(v) = pop() {
                                    got.push(v);
                                }
                                break;
                            }
                            None => std::hint::spin_loop(),
                        }
                    }
                    got
                })
            })
            .collect();
        let producer_handles: Vec<_> = (0..producers)
            .map(|p| {
                let push = &push;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        push(p * per_thread + i);
                    }
                })
            })
            .collect();
        for h in producer_handles {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        consumer_handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
}

/// Nothing lost, nothing duplicated: the popped multiset is exactly the
/// pushed set.
fn assert_conserved(popped: &[u64], producers: u64, per_thread: u64) {
    let expected = producers * per_thread;
    assert_eq!(popped.len() as u64, expected, "lost elements");
    let unique: BTreeSet<u64> = popped.iter().copied().collect();
    assert_eq!(unique.len() as u64, expected, "duplicated elements");
}

#[test]
fn treiber_stack_conserves_elements() {
    let s = TreiberStack::new();
    let popped = contend(
        THREADS / 2,
        THREADS / 2,
        PER_THREAD,
        |v| s.push(v),
        || s.pop(),
    );
    assert_conserved(&popped, THREADS / 2, PER_THREAD);
}

#[test]
fn elim_stack_conserves_elements() {
    let s = ElimStack::new(4, 64);
    let popped = contend(
        THREADS / 2,
        THREADS / 2,
        PER_THREAD,
        |v| s.push(v),
        || s.pop(),
    );
    assert_conserved(&popped, THREADS / 2, PER_THREAD);
}

#[test]
fn mutex_stack_conserves_elements() {
    let s = MutexStack::new();
    let popped = contend(
        THREADS / 2,
        THREADS / 2,
        PER_THREAD,
        |v| ConcurrentStack::push(&s, v),
        || ConcurrentStack::pop(&s),
    );
    assert_conserved(&popped, THREADS / 2, PER_THREAD);
}

#[test]
fn ms_queue_conserves_elements() {
    let q = MsQueue::new();
    let popped = contend(
        THREADS / 2,
        THREADS / 2,
        PER_THREAD,
        |v| q.push(v),
        || q.pop(),
    );
    assert_conserved(&popped, THREADS / 2, PER_THREAD);
}

#[test]
fn hw_queue_conserves_elements() {
    // Non-recycling bounded queue: capacity must cover every enqueue.
    let q = HwQueue::new((THREADS / 2 * PER_THREAD) as usize);
    let popped = contend(
        THREADS / 2,
        THREADS / 2,
        PER_THREAD,
        |v| ConcurrentQueue::enqueue(&q, v),
        || q.try_pop(),
    );
    assert_conserved(&popped, THREADS / 2, PER_THREAD);
}

#[test]
fn mutex_queue_conserves_elements() {
    let q = MutexQueue::new();
    let popped = contend(
        THREADS / 2,
        THREADS / 2,
        PER_THREAD,
        |v| ConcurrentQueue::enqueue(&q, v),
        || ConcurrentQueue::dequeue(&q),
    );
    assert_conserved(&popped, THREADS / 2, PER_THREAD);
}

#[test]
fn spsc_ring_preserves_count_and_order() {
    let (tx, rx) = spsc_ring(64);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for i in 0..4 * PER_THREAD {
                tx.push(i);
            }
        });
        scope.spawn(move || {
            for expect in 0..4 * PER_THREAD {
                assert_eq!(rx.pop(), expect, "spsc reordered or lost an element");
            }
        });
    });
}

#[test]
fn chase_lev_conserves_elements_across_thieves() {
    let total = (THREADS * PER_THREAD) as usize;
    let (worker, stealer) = chase_lev(total);
    let done = AtomicBool::new(false);
    let outs: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let thief_handles: Vec<_> = (0..THREADS - 1)
            .map(|_| {
                let stealer = stealer.clone();
                let done = &done;
                scope.spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match stealer.steal() {
                            Steal::Stolen(v) => got.push(v),
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty if done.load(Ordering::Acquire) => {
                                // Final sweep: drain whatever is left.
                                loop {
                                    match stealer.steal() {
                                        Steal::Stolen(v) => got.push(v),
                                        Steal::Retry => std::hint::spin_loop(),
                                        Steal::Empty => break,
                                    }
                                }
                                break;
                            }
                            Steal::Empty => std::hint::spin_loop(),
                        }
                    }
                    got
                })
            })
            .collect();
        let owner = scope.spawn(|| {
            let mut got = Vec::new();
            for i in 0..total as u64 {
                worker.push(i);
                if i % 3 == 0 {
                    if let Some(v) = worker.pop() {
                        got.push(v);
                    }
                }
            }
            while let Some(v) = worker.pop() {
                got.push(v);
            }
            got
        });
        let mut outs = vec![owner.join().unwrap()];
        done.store(true, Ordering::Release);
        outs.extend(thief_handles.into_iter().map(|h| h.join().unwrap()));
        outs
    });
    let all: Vec<u64> = outs.into_iter().flatten().collect();
    assert_conserved(&all, 1, total as u64);
}

#[test]
fn exchanger_pairs_conserve_values() {
    // 4 threads exchange distinct values; every successful exchange must
    // be a symmetric swap, so the multiset of (given minus received)
    // values cancels out and nobody receives their own value back.
    let ex = Exchanger::new();
    let given = AtomicU64::new(0);
    let got = AtomicU64::new(0);
    let swaps = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let ex = &ex;
            let (given, got, swaps) = (&given, &got, &swaps);
            scope.spawn(move || {
                for i in 0..200u64 {
                    let mine = t * 1_000 + i;
                    if let Ok(theirs) = ex.exchange(mine, 512) {
                        assert_ne!(theirs, mine, "exchanged with self");
                        given.fetch_add(mine, Ordering::Relaxed);
                        got.fetch_add(theirs, Ordering::Relaxed);
                        swaps.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    // Pairwise swaps: the sums of values given and received must match,
    // and successes come in pairs.
    assert_eq!(given.load(Ordering::Relaxed), got.load(Ordering::Relaxed));
    assert_eq!(swaps.load(Ordering::Relaxed) % 2, 0);
}
