//! Work stealing: the §6 future-work structure, checked and run.
//!
//! ```text
//! cargo run --release --example work_stealing
//! ```
//!
//! Part 1 model-checks the Chase-Lev deque's consistency (and shows that
//! removing the SC fences breaks it). Part 2 uses the native deque to
//! distribute a parallel sum across thieves.

use compass::deque_spec::{check_deque_consistent, mutator_subgraph, DequeInterp};
use compass::history::find_linearization;
use compass_repro::native::{chase_lev, Steal};
use compass_repro::structures::deque::ChaseLevDeque;
use orc11::{pct_strategy, run_model, BodyFn, Config, ThreadCtx, Val};

fn check_model(weak: bool, seeds: u64) -> (u64, u64) {
    let mut consistent = 0;
    let mut violations = 0;
    for seed in 0..seeds {
        let out = run_model(
            &Config::default(),
            pct_strategy(seed, 3, 40),
            |ctx| {
                if weak {
                    ChaseLevDeque::new_weak_fences(ctx, 8)
                } else {
                    ChaseLevDeque::new(ctx, 8)
                }
            },
            vec![
                Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                    d.push(ctx, Val::Int(1));
                    d.push(ctx, Val::Int(2));
                    d.pop(ctx);
                    d.pop(ctx);
                }) as BodyFn<'_, _, ()>,
                Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                    d.steal(ctx);
                }),
                Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                    d.steal(ctx);
                }),
            ],
            |_, d, _| d.obj().snapshot(),
        );
        if let Ok(g) = out.result {
            if check_deque_consistent(&g).is_ok()
                && find_linearization(&mutator_subgraph(&g), &DequeInterp, &[]).is_some()
            {
                consistent += 1;
            } else {
                violations += 1;
            }
        }
    }
    (consistent, violations)
}

fn main() {
    println!("Part 1 — model checking (PCT, 600 schedules each):");
    let (ok, bad) = check_model(false, 600);
    println!("  SC fences:      {ok} consistent, {bad} violations");
    let (ok, bad) = check_model(true, 600);
    println!("  acq-rel fences: {ok} consistent, {bad} violations  ← the classic fence bug");

    println!("\nPart 2 — native work distribution:");
    const TASKS: u64 = 200_000;
    let (worker, stealer) = chase_lev::<u64>(TASKS as usize);
    let start = std::time::Instant::now();
    let total: u64 = std::thread::scope(|scope| {
        let thieves: Vec<_> = (0..3)
            .map(|_| {
                let s = stealer.clone();
                scope.spawn(move || {
                    let mut sum = 0u64;
                    let mut dry = 0;
                    while dry < 10_000 {
                        match s.steal() {
                            Steal::Stolen(v) => {
                                sum += v;
                                dry = 0;
                            }
                            _ => dry += 1,
                        }
                    }
                    sum
                })
            })
            .collect();
        let mut owner_sum = 0u64;
        for i in 1..=TASKS {
            worker.push(i);
            if i % 4 == 0 {
                if let Some(v) = worker.pop() {
                    owner_sum += v;
                }
            }
        }
        while let Some(v) = worker.pop() {
            owner_sum += v;
        }
        owner_sum + thieves.into_iter().map(|t| t.join().unwrap()).sum::<u64>()
    });
    let expect = TASKS * (TASKS + 1) / 2;
    assert_eq!(total, expect, "work lost or duplicated");
    println!(
        "  {TASKS} tasks summed to {total} (exact) across 1 owner + 3 thieves in {:?}",
        start.elapsed()
    );
}
