//! Quickstart: check a relaxed-memory queue against its Compass spec.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the paper's Message-Passing client (Figure 1) on the
//! release/acquire Michael-Scott queue, explores a few hundred
//! interleavings under the ORC11-style model, and checks every execution
//! against `QueueConsistent` plus the client property "the
//! flag-synchronized dequeue never returns empty".

use compass_repro::structures::clients::{check_mp, run_mp};
use compass_repro::structures::queue::MsQueue;
use orc11::random_strategy;

fn main() {
    let seeds = 300;
    let mut outcomes = std::collections::BTreeMap::new();
    for seed in 0..seeds {
        let out = run_mp(
            MsQueue::new,
            /* release flag */ true,
            random_strategy(seed),
        );
        let res = match out.result {
            Ok(r) => r,
            Err(e) => {
                eprintln!("seed {seed}: model error: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = check_mp(&res, true) {
            eprintln!("seed {seed}: SPEC VIOLATION: {e}");
            eprintln!("graph:\n{}", res.graph);
            std::process::exit(1);
        }
        *outcomes
            .entry(format!("{:?}", res.right_value))
            .or_insert(0u32) += 1;
    }
    println!("Message-Passing client over the Michael-Scott queue, {seeds} interleavings:");
    for (outcome, count) in &outcomes {
        println!("  right thread dequeued {outcome}: {count}");
    }
    println!(
        "\nEvery execution satisfied QueueConsistent, and the flag-synchronized \
         thread never saw an\nempty queue — the paper's Figure 1 property, checked \
         instead of proved."
    );
}
