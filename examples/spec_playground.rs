//! Spec playground: hand-build event graphs and watch the consistency
//! conditions accept or reject them.
//!
//! ```text
//! cargo run --example spec_playground
//! ```
//!
//! Useful for getting a feel for the paper's conditions without running
//! the memory model at all — the graphs here are the ones drawn in §3.1's
//! prose.

use compass::dot::to_dot;
use compass::queue_spec::{check_queue_consistent, QueueEvent};
use compass::report::render_failure;
use compass::{EventId, Graph};
use orc11::Val;

fn id(i: u64) -> EventId {
    EventId::from_raw(i)
}

fn main() {
    // A consistent history: two ordered enqueues, dequeued in order by a
    // consumer that synchronized with both.
    let mut good: Graph<QueueEvent> = Graph::new();
    good.add_event(
        QueueEvent::Enq(Val::Int(41)),
        1,
        1,
        [id(0)].into_iter().collect(),
    );
    good.add_event(
        QueueEvent::Enq(Val::Int(42)),
        1,
        2,
        [id(0), id(1)].into_iter().collect(),
    );
    good.add_event(
        QueueEvent::Deq(Val::Int(41)),
        2,
        3,
        [id(0), id(1), id(2)].into_iter().collect(),
    );
    good.add_event(
        QueueEvent::Deq(Val::Int(42)),
        3,
        4,
        [id(0), id(1), id(2), id(3)].into_iter().collect(),
    );
    good.add_so(id(0), id(2));
    good.add_so(id(1), id(3));
    println!("— a FIFO history —");
    match check_queue_consistent(&good) {
        Ok(()) => println!("QueueConsistent: ✓\n{}", to_dot(&good, "fifo")),
        Err(v) => println!("{}", render_failure(&good, &v, &[])),
    }

    // The same history with the dequeues swapped: the second enqueue is
    // taken while the (hb-earlier) first is still in the queue.
    let mut bad: Graph<QueueEvent> = Graph::new();
    bad.add_event(
        QueueEvent::Enq(Val::Int(41)),
        1,
        1,
        [id(0)].into_iter().collect(),
    );
    bad.add_event(
        QueueEvent::Enq(Val::Int(42)),
        1,
        2,
        [id(0), id(1)].into_iter().collect(),
    );
    bad.add_event(
        QueueEvent::Deq(Val::Int(42)),
        2,
        3,
        [id(0), id(1), id(2)].into_iter().collect(),
    );
    bad.add_so(id(1), id(2));
    println!("\n— the same shape dequeued out of order —");
    match check_queue_consistent(&bad) {
        Ok(()) => println!("QueueConsistent: ✓ (unexpected!)"),
        Err(v) => println!("{}", render_failure(&bad, &v, &[])),
    }

    // An empty dequeue that happens-after an un-dequeued enqueue: the
    // QUEUE-EMPDEQ condition — the engine behind Figure 1's guarantee.
    let mut emp: Graph<QueueEvent> = Graph::new();
    emp.add_event(
        QueueEvent::Enq(Val::Int(7)),
        1,
        1,
        [id(0)].into_iter().collect(),
    );
    emp.add_event(
        QueueEvent::EmpDeq,
        2,
        2,
        [id(0), id(1)].into_iter().collect(),
    );
    println!("\n— an empty dequeue that has seen an undelivered enqueue —");
    match check_queue_consistent(&emp) {
        Ok(()) => println!("QueueConsistent: ✓ (unexpected!)"),
        Err(v) => println!("{}", render_failure(&emp, &v, &[])),
    }

    // The same empty dequeue WITHOUT the lhb edge: a weak (relaxed)
    // dequeue that simply had not seen the enqueue — allowed.
    let mut weak: Graph<QueueEvent> = Graph::new();
    weak.add_event(
        QueueEvent::Enq(Val::Int(7)),
        1,
        1,
        [id(0)].into_iter().collect(),
    );
    weak.add_event(QueueEvent::EmpDeq, 2, 2, [id(1)].into_iter().collect());
    println!("\n— the same empty dequeue, unsynchronized —");
    match check_queue_consistent(&weak) {
        Ok(()) => println!(
            "QueueConsistent: ✓ — a weak dequeue may miss concurrent enqueues; only \
             *synchronized* emptiness is forbidden"
        ),
        Err(v) => println!("{}", render_failure(&weak, &v, &[])),
    }
}
