//! Litmus gallery: the substrate's relaxed-memory behaviours, explored
//! exhaustively.
//!
//! ```text
//! cargo run --example litmus_gallery
//! ```

use orc11::litmus::gallery;

fn main() {
    for (report, verdict) in [
        (
            gallery::mp_rel_acq().dfs(100_000),
            "stale data read is FORBIDDEN",
        ),
        (
            gallery::mp_relaxed().dfs(100_000),
            "stale data read is ALLOWED",
        ),
        (
            gallery::mp_fences().dfs(100_000),
            "fences restore the guarantee",
        ),
        (gallery::sb().dfs(100_000), "both-read-zero is ALLOWED"),
        (gallery::corr().dfs(200_000), "per-location coherence holds"),
        (
            gallery::iriw_acq().dfs(600_000),
            "readers may disagree on write order (RC11, unlike SC)",
        ),
        (
            gallery::lb().dfs(100_000),
            "load buffering is FORBIDDEN (po ∪ rf acyclic)",
        ),
        (
            gallery::release_sequence().dfs(200_000),
            "release sequences extend through relaxed RMWs",
        ),
        (
            gallery::rmw_atomicity().dfs(100_000),
            "RMWs never duplicate",
        ),
    ] {
        println!("{report}  ⇒ {verdict}\n");
    }
}
