//! Elimination showdown: the §4.1 composition, both checked and timed.
//!
//! ```text
//! cargo run --release --example elimination_showdown
//! ```
//!
//! Part 1 model-checks the elimination stack's compositional consistency
//! (ES graph from base-stack + exchanger commits). Part 2 races the
//! native Treiber stack against the native elimination stack under
//! growing contention — the Hendler-Shavit-Yerushalmi shape: elimination
//! wins once the head CAS becomes the bottleneck.

use std::time::Instant;

use compass_bench::workloads::elim_stats;
use compass_native::{ConcurrentStack, ElimStack, MutexStack, TreiberStack};

fn time_stack<S: ConcurrentStack<u64>>(s: &S, threads: usize, ops: u64) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let s = &s;
            scope.spawn(move || {
                for i in 0..ops {
                    if i % 2 == 0 {
                        s.push(t as u64 * ops + i);
                    } else {
                        let _ = s.pop();
                    }
                }
            });
        }
    });
    let total = threads as f64 * ops as f64;
    total / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    println!("Part 1 — model-checked composition (§4.1), 200 seeds:");
    let s = elim_stats(0..200, 3);
    println!(
        "  ES StackConsistent {}/{} | base {}/{} | exchanger {}/{} | eliminated pairs {}",
        s.es_consistent, s.runs, s.base_consistent, s.runs, s.ex_consistent, s.runs, s.eliminations
    );
    assert_eq!(s.es_consistent, s.runs, "composition must be consistent");

    println!("\nPart 2 — native throughput, mixed push/pop (Mops/s):");
    println!(
        "{:>8} {:>10} {:>12} {:>10}",
        "threads", "treiber", "elimination", "mutex"
    );
    let ops = 100_000u64;
    for threads in [1usize, 2, 4, 8] {
        let treiber = time_stack(&TreiberStack::new(), threads, ops);
        let elim = time_stack(&ElimStack::new(threads, 256), threads, ops);
        let mutex = time_stack(&MutexStack::new(), threads, ops);
        println!("{threads:>8} {treiber:>10.2} {elim:>12.2} {mutex:>10.2}");
    }
    println!(
        "\nExpected shape: Treiber leads at 1 thread; the elimination stack \
         catches up (or wins) as\ncontention grows, because colliding push/pop \
         pairs cancel without touching the head."
    );
}
