//! SPSC pipeline: the §3.2 client, model-checked and run natively.
//!
//! ```text
//! cargo run --release --example spsc_pipeline
//! ```

use compass_repro::native::MsQueue;
use compass_repro::structures::clients::{check_spsc, run_spsc};
use orc11::random_strategy;

fn main() {
    // Model-checked: producer array reaches the consumer array in order.
    println!("Model: SPSC over the Michael-Scott queue, sizes 1..=8, 100 seeds each");
    for n in 1..=8usize {
        let mut ok = 0;
        for seed in 0..100 {
            let res = run_spsc(n, random_strategy(seed))
                .result
                .expect("model execution");
            check_spsc(&res, n).expect("FIFO transfer");
            ok += 1;
        }
        println!("  n = {n}: {ok}/100 executions transfer the array intact");
    }

    // Native: pipe a large stream through the real queue.
    println!("\nNative: streaming 1M items through compass_native::MsQueue");
    let q = MsQueue::new();
    let n = 1_000_000u64;
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        let q = &q;
        scope.spawn(move || {
            for i in 0..n {
                q.push(i);
            }
        });
        scope.spawn(move || {
            let mut expect = 0u64;
            while expect < n {
                if let Some(v) = q.pop() {
                    assert_eq!(v, expect, "FIFO violated");
                    expect += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
    });
    let secs = start.elapsed().as_secs_f64();
    println!(
        "  {n} items in {secs:.3}s ({:.2} Mops/s), order verified element-by-element",
        n as f64 / secs / 1e6
    );
}
